"""Tests for the plimc command-line interface."""

import pytest

from repro.cli import build_parser, load_circuit, main
from repro.eval.fig3 import fig3b
from repro.mig.io_aiger import write_aiger
from repro.mig.io_blif import write_blif
from repro.mig.io_mig import write_mig


@pytest.fixture
def circuit_file(tmp_path):
    path = tmp_path / "fig3b.mig"
    write_mig(fig3b(), str(path))
    return str(path)


class TestLoadCircuit:
    def test_dispatch_by_extension(self, tmp_path):
        mig = fig3b()
        for suffix, writer in ((".mig", write_mig), (".blif", write_blif), (".aag", write_aiger)):
            path = tmp_path / f"c{suffix}"
            writer(mig, str(path))
            loaded = load_circuit(str(path))
            assert loaded.num_pis == 3

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "c.xyz"
        path.write_text("")
        assert main(["stats", str(path)]) == 2  # ReproError → exit 2


class TestCompileCommand:
    def test_compile_to_file(self, circuit_file, tmp_path, capsys):
        out = tmp_path / "out.plim"
        assert main(["compile", circuit_file, "-o", str(out), "--verify"]) == 0
        text = out.read_text()
        assert text.startswith(".plim")
        captured = capsys.readouterr()
        assert "OK" in captured.err

    def test_compile_listing(self, circuit_file, capsys):
        assert main(["compile", circuit_file, "--listing", "--no-rewrite"]) == 0
        out = capsys.readouterr().out
        assert "01:" in out

    def test_compile_stdout_program(self, circuit_file, capsys):
        assert main(["compile", circuit_file]) == 0
        assert capsys.readouterr().out.startswith(".plim")

    def test_naive_flag(self, circuit_file, capsys):
        assert main(["compile", circuit_file, "--naive", "--no-rewrite", "--listing"]) == 0
        # naive translation of fig3b: exactly 19 instructions
        lines = [l for l in capsys.readouterr().out.splitlines() if l[:2].isdigit()]
        assert len(lines) == 19


class TestRunCommand:
    def test_run_program(self, circuit_file, tmp_path, capsys):
        out = tmp_path / "out.plim"
        main(["compile", circuit_file, "-o", str(out)])
        code = main(
            ["run", str(out), "--set", "i1=1", "--set", "i2=0", "--set", "i3=1"]
        )
        assert code == 0
        assert "f = " in capsys.readouterr().out

    def test_missing_inputs(self, circuit_file, tmp_path):
        out = tmp_path / "out.plim"
        main(["compile", circuit_file, "-o", str(out)])
        assert main(["run", str(out), "--set", "i1=1"]) == 2

    def test_bad_value(self, circuit_file, tmp_path):
        out = tmp_path / "out.plim"
        main(["compile", circuit_file, "-o", str(out)])
        assert main(["run", str(out), "--set", "i1=2"]) == 2


class TestOtherCommands:
    def test_stats(self, circuit_file, capsys):
        assert main(["stats", circuit_file]) == 0
        assert "gates=6" in capsys.readouterr().out

    def test_bench(self, capsys):
        assert main(["bench", "ctrl", "--scale", "ci"]) == 0
        out = capsys.readouterr().out
        assert "naive:" in out and "rewriting+compilation:" in out

    def test_table1_subset(self, capsys):
        assert main(["table1", "--names", "ctrl", "--scale", "ci"]) == 0
        out = capsys.readouterr().out
        assert "SUM" in out

    def test_table1_csv(self, capsys):
        assert main(["table1", "--names", "ctrl", "--scale", "ci", "--csv"]) == 0
        assert capsys.readouterr().out.startswith("Benchmark,")

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        assert "(paper: 15, 4)" in capsys.readouterr().out

    def test_fig3_listings(self, capsys):
        assert main(["fig3", "--listings"]) == 0
        assert "Fig. 3(b) smart" in capsys.readouterr().out

    def test_ablate(self, capsys):
        assert main(["ablate", "int2float", "--scale", "ci"]) == 0
        assert "Allocator" in capsys.readouterr().out

    def test_parser_version(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--version"])


class TestParetoCommand:
    def test_pareto_registry_benchmark(self, capsys):
        assert main(["pareto", "i2c", "--scale", "ci", "--workers", "1"]) == 0
        captured = capsys.readouterr()
        assert "Pareto (#N, #D) frontier — i2c" in captured.out
        assert "#N" in captured.out and "#D" in captured.out
        assert "non-dominated point(s)" in captured.err

    def test_pareto_circuit_file(self, circuit_file, capsys):
        assert main(["pareto", circuit_file, "--workers", "1"]) == 0
        assert "frontier" in capsys.readouterr().out

    def test_pareto_json(self, capsys):
        import json as json_module

        assert main(
            ["pareto", "ctrl", "--scale", "ci", "--workers", "1", "--json"]
        ) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["circuit"] == "ctrl"
        assert payload["points"]
        for point in payload["points"]:
            assert point["equivalence"] in ("exhaustive", "random")
            if point["budget"] is not None:
                assert point["depth"] <= point["budget"]

    def test_pareto_no_verify(self, capsys):
        assert main(
            ["pareto", "ctrl", "--scale", "ci", "--workers", "1",
             "--no-verify", "--json"]
        ) == 0
        import json as json_module

        payload = json_module.loads(capsys.readouterr().out)
        assert all(p["equivalence"] is None for p in payload["points"])

    def test_pareto_unknown_circuit(self):
        assert main(["pareto", "not-a-benchmark"]) == 2

    def test_pareto_cold_flag(self, capsys):
        assert main(
            ["pareto", "int2float", "--scale", "ci", "--workers", "1",
             "--cold", "--json"]
        ) == 0
        import json as json_module

        payload = json_module.loads(capsys.readouterr().out)
        assert all(
            p["source"] == "cold"
            for p in payload["points"] + payload["dominated"]
        )


class TestCacheCommands:
    def test_pareto_cache_dir_round_trip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["pareto", "ctrl", "--scale", "ci", "--workers", "1",
                "--cache-dir", cache_dir, "--json"]
        import json as json_module

        assert main(args) == 0
        first = json_module.loads(capsys.readouterr().out)
        assert main(args) == 0
        second = json_module.loads(capsys.readouterr().out)
        assert second == first  # front hit: identical output, stored timings

    def test_compile_cache_dir(self, circuit_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        out = tmp_path / "out.plim"
        args = ["compile", circuit_file, "-o", str(out), "--cache-dir", cache_dir]
        assert main(args) == 0
        cold = out.read_text()
        assert main(args) == 0
        assert out.read_text() == cold

    def test_table1_cache_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["table1", "--names", "ctrl", "--scale", "ci", "--workers", "1",
                "--cache-dir", cache_dir]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == cold

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["pareto", "ctrl", "--scale", "ci", "--workers", "1",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "rewrites" in out and "fronts" in out and "total" in out
        assert main(["cache", "clear", cache_dir]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "stats", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "rewrites          0 entries" in out


class TestNewCompileFlags:
    def test_max_rrams_flag(self, circuit_file, capsys):
        assert main(["compile", circuit_file, "--max-rrams", "6", "--listing"]) == 0
        err = capsys.readouterr().err
        assert "work RRAMs" in err

    def test_emit_verilog(self, circuit_file, tmp_path, capsys):
        out = tmp_path / "out.v"
        assert main(["compile", circuit_file, "--emit-verilog", str(out), "--listing"]) == 0
        text = out.read_text()
        assert text.startswith("// generated by repro")
        assert "endmodule" in text

    def test_depth_rewrite_flag(self, circuit_file, capsys):
        """The deprecated flag still compiles correctly (via the shim)."""
        assert main(["compile", circuit_file, "--depth-rewrite", "--listing", "--verify"]) == 0
        err = capsys.readouterr().err
        assert "OK" in err
        assert "deprecated" in err
        assert "--objective" in err

    @pytest.mark.parametrize("objective", ["size", "depth", "balanced"])
    def test_objective_flag(self, circuit_file, objective, capsys):
        assert main(
            ["compile", circuit_file, "--objective", objective, "--verify"]
        ) == 0
        assert "OK" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["worklist", "rebuild"])
    def test_objective_honors_engine(self, circuit_file, engine, capsys):
        """--engine now applies to depth rewriting too (the old
        --depth-rewrite path ignored it)."""
        assert main(
            [
                "compile", circuit_file,
                "--objective", "depth",
                "--engine", engine,
                "--verify",
            ]
        ) == 0
        assert "OK" in capsys.readouterr().err

    def test_depth_rewrite_with_no_rewrite_still_depth_rewrites(
        self, circuit_file, capsys
    ):
        """Regression: the shim must keep the old flag's behavior of depth
        rewriting even when Algorithm 1 is disabled."""
        assert main(
            ["compile", circuit_file, "--no-rewrite", "--depth-rewrite", "--verify"]
        ) == 0
        err = capsys.readouterr().err
        assert "OK" in err and "deprecated" in err

    def test_depth_rewrite_respects_explicit_objective(self, circuit_file, capsys):
        """--depth-rewrite does not override an explicit --objective."""
        assert main(
            [
                "compile", circuit_file,
                "--depth-rewrite",
                "--objective", "depth",
                "--verify",
            ]
        ) == 0
        assert "OK" in capsys.readouterr().err

    def test_controller_command(self, circuit_file, tmp_path, capsys):
        out = tmp_path / "out.plim"
        main(["compile", circuit_file, "-o", str(out)])
        code = main(
            ["controller", str(out), "--set", "i1=1", "--set", "i2=0", "--set", "i3=1"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "f = " in captured.out
        assert "fetch" in captured.err


class TestResilienceFlags:
    """ISSUE 7: --timeout/--retries/--on-error plumbing and exit codes."""

    def test_policy_flags_parse(self):
        args = build_parser().parse_args(
            ["table1", "--timeout", "5", "--retries", "2", "--on-error", "skip"]
        )
        assert args.timeout == 5.0
        assert args.retries == 2
        assert args.on_error == "skip"

    def test_negative_timeout_exits_2(self, capsys):
        code = main(["table1", "--names", "ctrl", "--scale", "ci",
                     "--timeout", "-1"])
        assert code == 2
        assert "timeout_s" in capsys.readouterr().err

    def test_negative_retries_exits_2(self, capsys):
        code = main(["batch", "ctrl", "--scale", "ci", "--retries", "-3"])
        assert code == 2
        assert "retries" in capsys.readouterr().err

    def test_missing_circuit_file_exits_2_without_traceback(self, capsys):
        code = main(["compile", "no-such-circuit.blif"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("plimc: error:")
        assert "Traceback" not in err

    def test_policy_flags_accepted_on_a_real_run(self, capsys):
        code = main(["pareto", "ctrl", "--scale", "ci", "--workers", "1",
                     "--timeout", "300", "--retries", "1", "--on-error", "skip"])
        assert code == 0

    def test_task_error_exits_3(self, monkeypatch, capsys):
        from repro.core.resilience import TaskError, TaskFailure

        def exploding(args):
            raise TaskError(TaskFailure(0, "crash", "worker died"))

        monkeypatch.setattr("repro.cli._cmd_table1", exploding)
        parser = build_parser()
        args = parser.parse_args(["table1"])
        args.func = exploding
        monkeypatch.setattr("repro.cli.build_parser", lambda: parser)
        monkeypatch.setattr(parser, "parse_args", lambda argv: args)
        assert main(["table1"]) == 3
        assert "task failed" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        parser = build_parser()
        args = parser.parse_args(["fig3"])

        def interrupted(args):
            raise KeyboardInterrupt

        args.func = interrupted
        monkeypatch.setattr("repro.cli.build_parser", lambda: parser)
        monkeypatch.setattr(parser, "parse_args", lambda argv: args)
        assert main(["fig3"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_skip_mode_reports_failed_rows(self, monkeypatch, capsys):
        """A skip-mode table1 run prints one line per lost benchmark."""
        from repro.core.resilience import Fault, FaultPlan
        import repro.cli as cli
        import repro.eval.table1 as table1_mod

        real = table1_mod.run_table1

        def faulty(*args_, **kwargs):
            kwargs["fault_plan"] = FaultPlan({0: Fault("raise")})
            return real(*args_, **kwargs)

        monkeypatch.setattr(cli, "run_table1", faulty)
        code = main(["table1", "--names", "ctrl", "dec", "--scale", "ci",
                     "--workers", "2", "--on-error", "skip"])
        assert code == 0
        err = capsys.readouterr().err
        assert "ctrl failed" in err and "error" in err


class TestCacheMaxBytes:
    def test_trim_subcommand(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["pareto", "ctrl", "--scale", "ci", "--workers", "1",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "trim", cache_dir, "--max-bytes", "0"]) == 0
        assert "evicted" in capsys.readouterr().out
        assert main(["cache", "stats", cache_dir]) == 0
        assert " 0 entries" in capsys.readouterr().out.splitlines()[-1]

    def test_cache_max_bytes_needs_cache_dir(self, capsys):
        code = main(["table1", "--names", "ctrl", "--scale", "ci",
                     "--cache-max-bytes", "1000"])
        assert code == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_cache_max_bytes_is_enforced(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["pareto", "i2c", "--scale", "ci", "--workers", "1",
                     "--cache-dir", cache_dir, "--cache-max-bytes", "600"]) == 0
        from repro.core.cache import SynthesisCache

        usage = SynthesisCache(cache_dir).disk_usage()
        total = sum(u["bytes"] for u in usage.values())
        entries = sum(u["entries"] for u in usage.values())
        assert total <= 600 or entries == 1
