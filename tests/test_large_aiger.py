"""Large-benchmark path: binary AIGER ingest at the 10^5-node scale.

The acceptance case of the array-core PR: a circuit with >=100k AND
gates round-trips through the compact binary encoding on disk and runs
Algorithm 1 (objective="size") end to end in seconds — the workload the
flat struct-of-arrays storage exists for.  Marked slow alongside the
paper-scale pipeline tests.
"""

import random

import pytest

from repro.circuits.registry import build
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.mig.io_aiger import read_aiger, write_aiger
from repro.mig.simulate import simulate_outputs

pytestmark = pytest.mark.slow


def _ingest(name: str, tmp_path):
    """Write a paper-scale registry circuit as binary AIGER, read it back."""
    target = tmp_path / f"{name}.aig"
    write_aiger(build(name, "paper"), target)
    return read_aiger(target)


def _depth(mig) -> int:
    levels = {0: 0}
    for pi in mig.pis():
        levels[int(pi) >> 1] = 0
    for v in mig.topo_gates():
        levels[v] = 1 + max(levels[int(s) >> 1] for s in mig.children(v))
    return max((levels[int(po) >> 1] for po in mig.pos()), default=0)


def _sampled_equivalent(a, b, *, patterns=256, seed=20160605) -> bool:
    rng = random.Random(seed)
    packed = [rng.getrandbits(patterns) for _ in range(a.num_pis)]
    return simulate_outputs(a, packed, patterns) == simulate_outputs(b, packed, patterns)


def test_100k_node_ingest_and_size_rewrite(tmp_path):
    big = _ingest("mem_ctrl", tmp_path)
    assert big.num_gates >= 100_000
    assert big.is_append_clean()

    rewritten = rewrite_for_plim(big, RewriteOptions(effort=1, objective="size"))
    # The AND expansion is heavily redundant as an MIG; Algorithm 1 must
    # recover a large fraction of it in one cycle.
    assert rewritten.num_gates <= 0.7 * big.num_gates
    assert (rewritten.num_pis, rewritten.num_pos) == (big.num_pis, big.num_pos)
    assert _sampled_equivalent(rewritten, big)


def test_ingested_circuit_respects_depth_budget(tmp_path):
    big = _ingest("multiplier", tmp_path)
    assert big.num_gates >= 50_000
    budget = _depth(big)  # shrink without deepening at all

    rewritten = rewrite_for_plim(
        big, RewriteOptions(effort=1, objective="size", depth_budget=budget)
    )
    assert _depth(rewritten) <= budget
    assert rewritten.num_gates < big.num_gates
    assert _sampled_equivalent(rewritten, big)
