"""Differential tests: the worklist engine against the rebuild oracle.

The in-place worklist engine (the default) must be functionally equivalent
to the original rebuild pass pipeline on every registry circuit and on
random MIGs, and never worse in #N, estimated instructions, or the actual
compiled #I/#R of the Table 1 configurations.  A gated timing test asserts
the headline claim: the worklist engine is at least 3x faster on the
representative ``voter``/``sin`` circuits at default scale.
"""

import os
import time

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, build
from repro.core.cost import estimate_instructions
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.errors import ReproError
from repro.eval.table1 import measure_mig
from repro.mig.equivalence import equivalent

from conftest import random_mig

WORKLIST = RewriteOptions(engine="worklist")
REBUILD = RewriteOptions(engine="rebuild")


def test_unknown_engine_rejected():
    with pytest.raises(ReproError, match="unknown rewrite engine"):
        rewrite_for_plim(build("ctrl", "ci"), RewriteOptions(engine="bogus"))


def test_worklist_does_not_mutate_input():
    mig = build("int2float", "ci")
    nodes, gates, edits = len(mig), mig.num_gates, mig.edit_count
    rewrite_for_plim(mig, WORKLIST)
    assert (len(mig), mig.num_gates, mig.edit_count) == (nodes, gates, edits)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_engines_equivalent_and_worklist_never_larger(name):
    """Both engines compute the same functions; worklist is never larger."""
    mig = build(name, "ci")
    worklist = rewrite_for_plim(mig, WORKLIST)
    rebuild = rewrite_for_plim(mig, REBUILD)
    assert equivalent(worklist, rebuild)
    assert worklist.num_gates <= rebuild.num_gates
    assert estimate_instructions(worklist) <= estimate_instructions(rebuild)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_table1_metrics_identical_or_better(name):
    """The acceptance bar: every Table 1 metric identical or better."""
    worklist = measure_mig(build(name, "ci"), name, engine="worklist")
    rebuild = measure_mig(build(name, "ci"), name, engine="rebuild")
    for attr in ("rewr_n", "rewr_i", "rewr_r", "full_i", "full_r"):
        assert getattr(worklist, attr) <= getattr(rebuild, attr), (
            f"{name}: {attr} regressed — worklist {getattr(worklist, attr)} "
            f"vs rebuild {getattr(rebuild, attr)}"
        )


@pytest.mark.parametrize("seed", range(12))
def test_engines_equivalent_on_random_migs(seed):
    mig = random_mig(seed, num_pis=6, num_gates=40, num_pos=3, invert_probability=0.5)
    worklist = rewrite_for_plim(mig, WORKLIST)
    rebuild = rewrite_for_plim(mig, REBUILD)
    assert equivalent(worklist, rebuild)
    assert worklist.num_gates <= rebuild.num_gates
    assert estimate_instructions(worklist) <= estimate_instructions(rebuild)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize(
    "options_kwargs",
    [
        {"size_rules": False},
        {"inverter_rules": False},
        {"use_psi": True},
        {"po_negation_cost": 2},
        {"effort": 1},
        {"effort": 0},
    ],
    ids=lambda kw: next(iter(kw.items()))[0] + "=" + str(next(iter(kw.items()))[1]),
)
def test_engines_equivalent_under_option_sets(seed, options_kwargs):
    """Every RewriteOptions knob behaves equivalently under both engines."""
    mig = random_mig(seed + 50, num_pis=5, num_gates=30, invert_probability=0.5)
    worklist = rewrite_for_plim(mig, RewriteOptions(engine="worklist", **options_kwargs))
    rebuild = rewrite_for_plim(mig, RewriteOptions(engine="rebuild", **options_kwargs))
    assert equivalent(worklist, rebuild)
    assert worklist.num_gates <= rebuild.num_gates


@pytest.mark.slow
@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_TIMING") == "1",
    reason="timing assertions disabled (REPRO_SKIP_TIMING=1)",
)
def test_worklist_at_least_three_times_faster():
    """Acceptance: >= 3x faster on voter/sin at default scale."""

    def timed(mig, options):
        start = time.perf_counter()
        result = rewrite_for_plim(mig, options)
        return time.perf_counter() - start, result

    for name in ("voter", "sin"):
        mig = build(name, "default")
        # Warm up allocators/caches so the comparison is steady-state, and
        # take the best of a few runs so scheduler noise cannot fail CI.
        rewrite_for_plim(mig, WORKLIST)
        worklist_s, worklist = min(
            (timed(mig, WORKLIST) for _ in range(3)), key=lambda pair: pair[0]
        )
        rebuild_s, rebuild = min(
            (timed(mig, REBUILD) for _ in range(2)), key=lambda pair: pair[0]
        )

        assert worklist.num_gates <= rebuild.num_gates
        assert worklist_s * 3 <= rebuild_s, (
            f"{name}: worklist {worklist_s:.3f}s vs rebuild {rebuild_s:.3f}s "
            f"({rebuild_s / worklist_s:.2f}x)"
        )
