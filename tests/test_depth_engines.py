"""Differential tests: the worklist depth engine against the rebuild oracle.

The in-place depth rewriter (``objective="depth"``, the default engine of
``rewrite_depth``) must be functionally equivalent to the legacy
``pass_associativity_depth`` pipeline on every registry circuit and on
random MIGs, reach a depth no worse than the oracle's, and never grow the
graph beyond the Ω.A reshaping (i.e. never beyond the cleaned input's gate
count).  The ``balanced`` multi-objective loop must preserve functions and
never be larger than the cleaned input.  A gated timing test asserts the
headline claim: the worklist depth engine is at least 2x faster than the
oracle on the representative ``voter``/``sin`` circuits at default scale.
"""

import os
import time

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, build
from repro.core.rewriting import RewriteOptions, rewrite_depth, rewrite_for_plim
from repro.errors import MigError, ReproError
from repro.mig.algebra import try_associativity_depth
from repro.mig.analysis import depth, levels
from repro.mig.equivalence import equivalent
from repro.mig.graph import Mig

from conftest import random_mig

DEPTH_WORKLIST = RewriteOptions(engine="worklist", objective="depth")
DEPTH_REBUILD = RewriteOptions(engine="rebuild", objective="depth")
BALANCED = RewriteOptions(objective="balanced")


def test_unknown_objective_rejected():
    with pytest.raises(ReproError, match="unknown rewrite objective"):
        rewrite_for_plim(build("ctrl", "ci"), RewriteOptions(objective="bogus"))


def test_depth_worklist_does_not_mutate_input():
    mig = build("int2float", "ci")
    nodes, gates, edits = len(mig), mig.num_gates, mig.edit_count
    rewrite_for_plim(mig, DEPTH_WORKLIST)
    assert (len(mig), mig.num_gates, mig.edit_count) == (nodes, gates, edits)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_depth_engines_equivalent_and_worklist_never_deeper(name):
    """Equivalent functions; worklist depth <= oracle depth; size bounded."""
    mig = build(name, "ci")
    clean = mig.cleanup()[0]
    worklist = rewrite_for_plim(mig, DEPTH_WORKLIST)
    rebuild = rewrite_for_plim(mig, DEPTH_REBUILD)
    assert equivalent(worklist, rebuild)
    assert depth(worklist) <= depth(rebuild)
    assert worklist.num_gates <= clean.num_gates


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_balanced_objective_equivalent_and_bounded(name):
    """The multi-objective loop preserves functions and never grows #N."""
    mig = build(name, "ci")
    clean = mig.cleanup()[0]
    balanced = rewrite_for_plim(mig, BALANCED)
    assert equivalent(balanced, clean)
    assert balanced.num_gates <= clean.num_gates


@pytest.mark.parametrize("name", ["int2float", "router", "adder"])
def test_balanced_not_deeper_than_size_objective(name):
    """Interleaving the depth phase keeps depth at or below size-only
    rewriting on the representative circuits (the --depth-rewrite ordering
    bug was exactly this regressing)."""
    mig = build(name, "ci")
    size_only = rewrite_for_plim(mig, RewriteOptions())
    balanced = rewrite_for_plim(mig, BALANCED)
    assert depth(balanced) <= depth(size_only)


@pytest.mark.parametrize("seed", range(12))
def test_depth_engines_equivalent_on_random_migs(seed):
    mig = random_mig(seed, num_pis=6, num_gates=40, num_pos=3, invert_probability=0.5)
    clean = mig.cleanup()[0]
    worklist = rewrite_for_plim(mig, DEPTH_WORKLIST)
    rebuild = rewrite_for_plim(mig, DEPTH_REBUILD)
    assert equivalent(worklist, rebuild)
    assert depth(worklist) <= depth(rebuild)
    assert worklist.num_gates <= clean.num_gates


@pytest.mark.parametrize("engine", ["worklist", "rebuild"])
def test_rewrite_depth_wrapper_dispatches(engine):
    mig = build("int2float", "ci")
    result = rewrite_depth(mig, engine=engine)
    assert equivalent(result, mig.cleanup()[0])
    assert depth(result) <= depth(mig.cleanup()[0])


class TestIncrementalLevels:
    def test_enable_levels_requires_inplace(self):
        mig = random_mig(1)
        with pytest.raises(MigError, match="enable_inplace"):
            mig.enable_levels()

    def test_level_queries_require_enable(self):
        mig = random_mig(2)
        mig.enable_inplace()
        with pytest.raises(MigError, match="enable_levels"):
            mig.level_of(1)
        with pytest.raises(MigError, match="enable_levels"):
            mig.current_depth()

    def test_rule_requires_levels(self):
        mig = random_mig(3)
        mig.enable_inplace()
        gate = next(mig.gates())
        with pytest.raises(MigError, match="enable_levels"):
            try_associativity_depth(mig, gate)

    @pytest.mark.parametrize("seed", range(8))
    def test_levels_stay_exact_under_depth_rewriting(self, seed):
        """After arbitrary in-place depth rewriting the maintained levels
        must equal a from-scratch recomputation, and current_depth() the
        full-traversal depth."""
        mig = random_mig(seed, num_pis=6, num_gates=35, invert_probability=0.4)
        work, _ = mig.rebuild()
        work.enable_inplace()
        work.enable_levels()
        fanouts = work.fanout_snapshot()
        for v in list(work.topo_gates()):
            if work.is_gate(v):
                try_associativity_depth(work, v, fanouts)
        fresh = levels(work)
        for v in work.topo_gates():
            assert work.level_of(v) == fresh[v], v
        pos = [po.node for po in work.pos()]
        assert work.current_depth() == max(fresh[n] for n in pos)

    def test_new_gates_get_levels(self):
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        g = mig.add_maj(a, b, c)
        mig.add_po(g, "f")
        mig.enable_inplace()
        mig.enable_levels()
        d = mig.add_pi("d")
        h = mig.add_maj(g, a, d)
        assert mig.level_of(d.node) == 0
        assert mig.level_of(h.node) == 2


@pytest.mark.slow
@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_TIMING") == "1",
    reason="timing assertions disabled (REPRO_SKIP_TIMING=1)",
)
def test_depth_worklist_at_least_two_times_faster():
    """Acceptance: >= 2x faster than the oracle on voter/sin at default scale."""

    def timed(mig, options):
        start = time.perf_counter()
        result = rewrite_for_plim(mig, options)
        return time.perf_counter() - start, result

    for name in ("voter", "sin"):
        mig = build(name, "default")
        # Warm up allocators/caches so the comparison is steady-state, and
        # take the best of a few runs so scheduler noise cannot fail CI.
        rewrite_for_plim(mig, DEPTH_WORKLIST)
        worklist_s, worklist = min(
            (timed(mig, DEPTH_WORKLIST) for _ in range(3)), key=lambda pair: pair[0]
        )
        rebuild_s, rebuild = min(
            (timed(mig, DEPTH_REBUILD) for _ in range(2)), key=lambda pair: pair[0]
        )

        assert depth(worklist) <= depth(rebuild)
        assert worklist_s * 2 <= rebuild_s, (
            f"{name}: worklist {worklist_s:.3f}s vs rebuild {rebuild_s:.3f}s "
            f"({rebuild_s / worklist_s:.2f}x)"
        )
