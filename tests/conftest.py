"""Shared test helpers: random MIG generation and word-level I/O."""

from __future__ import annotations

import random

import pytest

from repro.mig.graph import Mig
from repro.mig.signal import Signal


def random_mig(
    seed: int,
    num_pis: int = 5,
    num_gates: int = 20,
    num_pos: int = 3,
    invert_probability: float = 0.3,
    allow_const: bool = True,
) -> Mig:
    """Deterministic random MIG used across unit and property tests."""
    rng = random.Random(seed)
    mig = Mig(name=f"random{seed}")
    signals: list[Signal] = [mig.add_pi(f"x{i}") for i in range(num_pis)]
    if allow_const:
        signals.append(Signal.CONST0)
    attempts = 0
    gates_created = 0
    while gates_created < num_gates and attempts < num_gates * 20:
        attempts += 1
        picks = rng.sample(range(len(signals)), 3) if len(signals) >= 3 else None
        if picks is None:
            break
        children = []
        for index in picks:
            signal = signals[index]
            if rng.random() < invert_probability:
                signal = ~signal
            children.append(signal)
        before = len(mig)
        result = mig.add_maj(*children)
        if len(mig) > before:
            signals.append(result)
            gates_created += 1
    # Outputs: prefer late gates so most of the graph stays live.
    pool = signals[-max(num_pos * 2, 4):]
    for i in range(num_pos):
        signal = pool[rng.randrange(len(pool))]
        if rng.random() < invert_probability:
            signal = ~signal
        mig.add_po(signal, f"f{i}")
    return mig


def word_assignment(prefix: str, value: int, width: int) -> dict[str, int]:
    """PI assignment dict for a little-endian input word."""
    return {f"{prefix}{i}": (value >> i) & 1 for i in range(width)}


def read_word(outputs: dict[str, int], prefix: str, width: int) -> int:
    """Assemble an integer from little-endian output bits."""
    value = 0
    for i in range(width):
        value |= (outputs[f"{prefix}{i}"] & 1) << i
    return value


@pytest.fixture
def small_random_mig() -> Mig:
    """A fixed small random MIG for quick structural tests."""
    return random_mig(seed=11, num_pis=4, num_gates=12, num_pos=2)
