"""Unit tests for repro.core.schedule (§4.2.1 candidate selection).

Includes the two Fig. 4 scenarios: (a) prefer the candidate with more
releasing children; (b) parent-level dominance defers results that are
consumed late.
"""

import pytest

from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.schedule import (
    CandidateKey,
    IndexScheduler,
    NO_PARENT_LEVEL,
    PriorityScheduler,
    make_key,
)
from repro.mig.graph import Mig
from repro.mig.signal import Signal


def key(releasing=0, unblocks=0, lo=0, hi=0, index=0):
    return CandidateKey(releasing, unblocks, lo, hi, index)


class TestCandidateKey:
    def test_releasing_wins(self):
        assert key(releasing=2, index=9) < key(releasing=1, index=1)

    def test_unblocks_second(self):
        assert key(unblocks=1, index=9) < key(unblocks=0, index=1)

    def test_level_dominance(self):
        # u's highest parent below v's lowest parent → u first
        assert key(lo=1, hi=2, index=9) < key(lo=3, hi=5, index=1)
        assert not (key(lo=3, hi=5, index=1) < key(lo=1, hi=2, index=9))

    def test_overlapping_levels_fall_to_index(self):
        assert key(lo=1, hi=4, index=1) < key(lo=2, hi=3, index=2)

    def test_index_tiebreak(self):
        assert key(index=3) < key(index=5)

    def test_make_key_no_parents(self):
        k = make_key(7, 1, [])
        assert k.min_parent_level == NO_PARENT_LEVEL
        assert k.index == 7

    def test_make_key_with_parents(self):
        k = make_key(7, 0, [3, 1, 2])
        assert (k.min_parent_level, k.max_parent_level) == (1, 3)


class TestIndexScheduler:
    def test_pops_in_index_order(self):
        sched = IndexScheduler()
        for node in (5, 2, 9):
            sched.push(node)
        assert [sched.pop() for _ in range(3)] == [2, 5, 9]

    def test_contains_and_len(self):
        sched = IndexScheduler()
        sched.push(4)
        assert 4 in sched and len(sched) == 1
        sched.pop()
        assert 4 not in sched and len(sched) == 0

    def test_refresh_is_noop(self):
        sched = IndexScheduler()
        sched.push(1)
        sched.refresh(1)
        assert len(sched) == 1


class TestPriorityScheduler:
    def test_pops_by_key(self):
        keys = {1: key(releasing=0, index=1), 2: key(releasing=2, index=2)}
        sched = PriorityScheduler(lambda n: keys[n])
        sched.push(1)
        sched.push(2)
        assert sched.pop() == 2

    def test_refresh_promotes(self):
        keys = {1: key(releasing=0, index=1), 2: key(releasing=0, index=2)}
        sched = PriorityScheduler(lambda n: keys[n])
        sched.push(1)
        sched.push(2)
        keys[2] = key(releasing=3, index=2)
        sched.refresh(2)
        assert sched.pop() == 2

    def test_refresh_unknown_node_noop(self):
        sched = PriorityScheduler(lambda n: key(index=n))
        sched.push(1)
        sched.refresh(99)
        assert len(sched) == 1

    def test_stale_entries_skipped(self):
        keys = {1: key(index=1), 2: key(index=2)}
        sched = PriorityScheduler(lambda n: keys[n])
        sched.push(1)
        sched.push(2)
        keys[1] = key(index=9)
        sched.refresh(1)
        assert sched.pop() == 2
        assert sched.pop() == 1
        assert len(sched) == 0


def compile_order(mig, **options):
    """Translation order of gates, recovered from instruction comments."""
    program = PlimCompiler(
        CompilerOptions(fix_output_polarity=False, reorder="none", **options)
    ).compile(mig)
    order = []
    for instr in program:
        if instr.comment.split("<- ")[-1].startswith("n"):
            order.append(instr.comment.split("<- ")[-1])
    return order


class TestFig4Principles:
    def test_fig4a_more_releasing_children_first(self):
        """u (two single-fanout children) beats v (one) — Fig. 4(a)."""
        mig = Mig()
        a, b, c, d = (mig.add_pi(x) for x in "abcd")
        # shared child (fanout 2) and private children
        shared = mig.add_maj(a, b, Signal.CONST0)
        pu1 = mig.add_maj(a, c, Signal.CONST0)
        pu2 = mig.add_maj(b, d, Signal.CONST1)
        pv1 = mig.add_maj(c, d, Signal.CONST0)
        v = mig.add_maj(pv1, shared, a)  # one releasing child (pv1)
        u = mig.add_maj(pu1, pu2, b)  # two releasing children
        root = mig.add_maj(u, v, shared)
        mig.add_po(root, "f")
        order = compile_order(mig)
        # u (higher index!) must still be translated before v
        assert order.index(f"n{u.node}") < order.index(f"n{v.node}")

    def test_fig4b_level_rule_defers_early_allocation(self):
        """With the level rule, a candidate consumed only at the root is
        deferred until the candidates consumed lower are done — Fig. 4(b)."""
        mig = Mig()
        a, b, c, d = (mig.add_pi(x) for x in "abcd")
        u = mig.add_maj(a, b, Signal.CONST0)  # consumed only by the root
        v = mig.add_maj(c, d, Signal.CONST0)  # consumed by mid
        mid = mig.add_maj(v, a, Signal.CONST1)
        mid2 = mig.add_maj(mid, b, Signal.CONST0)
        root = mig.add_maj(u, mid2, c)
        mig.add_po(root, "f")
        order = compile_order(mig, level_rule=True)
        assert order.index(f"n{v.node}") < order.index(f"n{u.node}")


class TestUnblockingRule:
    def test_last_missing_child_preferred(self):
        mig = Mig()
        a, b, c, d = (mig.add_pi(x) for x in "abcd")
        # x1 feeds parent p together with x2; computing x2 after x1 unblocks p.
        x1 = mig.add_maj(a, b, Signal.CONST0)
        x2 = mig.add_maj(c, d, Signal.CONST0)
        other = mig.add_maj(a, d, Signal.CONST1)
        p = mig.add_maj(x1, x2, a)
        root = mig.add_maj(p, other, b)
        mig.add_po(root, "f")
        order = compile_order(mig, unblocking_rule=True)
        # after x1, the unblocking rule pulls x2 ahead of `other`
        i1, i2, io = (order.index(f"n{n.node}") for n in (x1, x2, other))
        assert i1 < i2 < io
