"""Unit tests for repro.mig.algebra (the Ω axiom passes).

Every pass must preserve all output functions; the size-rule passes must
never grow the graph.  Targeted constructions check each pattern actually
fires.
"""

import pytest

from repro.mig.algebra import (
    effective_children,
    pass_associativity,
    pass_commutativity,
    pass_distributivity_lr,
    pass_distributivity_rl,
    pass_majority,
    pass_push_inverters,
)
from repro.mig.analysis import complement_stats
from repro.mig.graph import Mig
from repro.mig.signal import Signal
from repro.mig.simulate import truth_tables

from conftest import random_mig

ALL_PASSES = [
    pass_majority,
    pass_commutativity,
    pass_distributivity_rl,
    pass_distributivity_lr,
    pass_associativity,
    pass_push_inverters,
]


@pytest.mark.parametrize("pass_fn", ALL_PASSES)
@pytest.mark.parametrize("seed", range(6))
def test_passes_preserve_function(pass_fn, seed):
    mig = random_mig(seed, num_pis=5, num_gates=25, num_pos=3)
    rewritten = pass_fn(mig)
    assert truth_tables(mig) == truth_tables(rewritten)


@pytest.mark.parametrize(
    "pass_fn",
    [pass_majority, pass_commutativity, pass_distributivity_rl, pass_associativity],
)
@pytest.mark.parametrize("seed", range(6))
def test_size_passes_never_grow(pass_fn, seed):
    mig = random_mig(seed, num_pis=5, num_gates=25, num_pos=3)
    baseline = mig.cleanup()[0].num_gates
    assert pass_fn(mig).num_gates <= baseline


class TestEffectiveChildren:
    def test_plain_edge(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        g = mig.add_maj(a, b, Signal.CONST0)
        assert effective_children(mig, g) == (a, b, Signal.CONST0)

    def test_inverted_edge_flips_children(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        g = mig.add_maj(a, ~b, Signal.CONST0)
        assert effective_children(mig, ~g) == (~a, b, Signal.CONST1)

    def test_non_gate_returns_none(self):
        mig = Mig()
        a = mig.add_pi("a")
        assert effective_children(mig, a) is None
        assert effective_children(mig, Signal.CONST0) is None


class TestMajorityPass:
    def test_removes_reducible_gate(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        g = mig.add_maj(a, a, b, simplify=False)
        mig.add_po(g, "f")
        result = pass_majority(mig)
        assert result.num_gates == 0
        assert truth_tables(result)["f"] == truth_tables(mig)["f"]

    def test_merges_duplicates(self):
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        g1 = mig.add_maj(a, b, c)
        # same function built again bypassing simplification paths
        g2 = mig.add_maj(c, b, a)
        mig.add_po(g1, "f")
        mig.add_po(g2, "g")
        assert pass_majority(mig).num_gates == 1


class TestDistributivityRL:
    def make_pattern(self):
        """⟨⟨x y u⟩ ⟨x y v⟩ z⟩ with single-fanout inner gates."""
        mig = Mig()
        x, y, u, v, z = (mig.add_pi(n) for n in "xyuvz")
        inner1 = mig.add_maj(x, y, u)
        inner2 = mig.add_maj(x, y, v)
        root = mig.add_maj(inner1, inner2, z)
        mig.add_po(root, "f")
        return mig

    def test_saves_one_node(self):
        mig = self.make_pattern()
        assert mig.num_gates == 3
        result = pass_distributivity_rl(mig)
        assert result.num_gates == 2
        assert truth_tables(result)["f"] == truth_tables(mig)["f"]

    def test_skipped_for_shared_inner(self):
        mig = Mig()
        x, y, u, v, z = (mig.add_pi(n) for n in "xyuvz")
        inner1 = mig.add_maj(x, y, u)
        inner2 = mig.add_maj(x, y, v)
        root = mig.add_maj(inner1, inner2, z)
        mig.add_po(root, "f")
        mig.add_po(inner1, "g")  # inner1 now has fanout 2
        result = pass_distributivity_rl(mig)
        assert result.num_gates == 3

    def test_polarity_through_omega_i(self):
        """Complemented inner edges are matched via Ω.I."""
        mig = Mig()
        x, y, u, v, z = (mig.add_pi(n) for n in "xyuvz")
        inner1 = mig.add_maj(~x, ~y, u)
        inner2 = mig.add_maj(x, y, v)
        root = mig.add_maj(~inner1, inner2, z)  # ~inner1 = ⟨x y ~u⟩
        mig.add_po(root, "f")
        result = pass_distributivity_rl(mig)
        assert result.num_gates == 2
        assert truth_tables(result)["f"] == truth_tables(mig)["f"]


class TestAssociativity:
    def test_enables_sharing(self):
        """⟨x u ⟨y u z⟩⟩ where ⟨y u x⟩ already exists → node reuse."""
        mig = Mig()
        x, y, z, u = (mig.add_pi(n) for n in "xyzu")
        existing = mig.add_maj(y, u, x)
        inner = mig.add_maj(y, u, z)
        root = mig.add_maj(x, u, inner)
        mig.add_po(root, "f")
        mig.add_po(existing, "g")
        before = mig.cleanup()[0].num_gates
        result = pass_associativity(mig)
        assert result.num_gates < before
        assert truth_tables(result) == truth_tables(mig)


class TestCommutativity:
    def test_orders_complement_to_b_slot(self):
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        g = mig.add_maj(~a, b, c)
        mig.add_po(g, "f")
        result = pass_commutativity(mig)
        gate = next(iter(result.gates()))
        children = result.children(gate)
        assert children[1].inverted  # slot B holds the complemented child

    def test_best_assignment_with_const_and_complement(self):
        """⟨0 ~a b⟩: B takes the complement (free), A the plain PI (free),
        Z the constant (1 instruction) — total cost 1, the global optimum."""
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        g = mig.add_maj(Signal.CONST0, ~a, b)
        mig.add_po(g, "f")
        result = pass_commutativity(mig)
        children = result.children(next(iter(result.gates())))
        assert children[1].inverted  # B = complemented child
        assert not children[0].inverted and not children[0].is_const  # A = plain PI
        assert children[2].is_const  # Z = constant (cheapest destination)

    def test_function_preserved_exhaustive(self):
        mig = random_mig(3, num_pis=4, num_gates=15)
        assert truth_tables(pass_commutativity(mig)) == truth_tables(mig)


class TestPushInverters:
    def test_flips_double_complement(self):
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        g = mig.add_maj(~a, ~b, c)
        mig.add_po(g, "f")
        result = pass_push_inverters(mig)
        assert complement_stats(result).multi_complement_gates == 0
        assert truth_tables(result)["f"] == truth_tables(mig)["f"]

    def test_threshold_three_keeps_double(self):
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        mig.add_po(mig.add_maj(~a, ~b, c), "f")
        mig.add_po(mig.add_maj(~a, ~b, ~c), "g")
        result = pass_push_inverters(mig, threshold=3)
        histogram = complement_stats(result).by_count
        assert histogram[3] == 0  # triple eliminated
        assert histogram[2] == 1  # double left alone

    def test_constant_complements_not_counted(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        g = mig.add_maj(~a, b, Signal.CONST1)  # one real complement only
        mig.add_po(g, "f")
        result = pass_push_inverters(mig)
        gate = next(iter(result.gates()))
        assert result.children(gate) == (~a, b, Signal.CONST1)


class TestComplementaryAssociativity:
    def test_identity_fires_and_simplifies(self):
        """⟨x u ⟨x̄? ...⟩⟩: inner ū replaced by x lets Ω.M collapse."""
        from repro.mig.algebra import pass_complementary_associativity

        mig = Mig()
        x, u, z = mig.add_pi("x"), mig.add_pi("u"), mig.add_pi("z")
        inner = mig.add_maj(x, ~u, z)  # contains ū and x → becomes ⟨x x z⟩ = x
        root = mig.add_maj(x, u, inner)
        mig.add_po(root, "f")
        result = pass_complementary_associativity(mig)
        assert result.num_gates < mig.num_gates
        assert truth_tables(result)["f"] == truth_tables(mig)["f"]

    def test_skipped_when_not_free(self):
        from repro.mig.algebra import pass_complementary_associativity

        mig = Mig()
        x, u, y, z = (mig.add_pi(n) for n in "xuyz")
        inner = mig.add_maj(y, ~u, z)  # replacement ⟨y x z⟩ would be a new gate
        root = mig.add_maj(x, u, inner)
        mig.add_po(root, "f")
        result = pass_complementary_associativity(mig)
        assert result.num_gates == mig.num_gates

    @pytest.mark.parametrize("seed", range(6))
    def test_preserves_function(self, seed):
        from repro.mig.algebra import pass_complementary_associativity

        mig = random_mig(seed, num_pis=5, num_gates=25, num_pos=3)
        assert truth_tables(pass_complementary_associativity(mig)) == truth_tables(mig)

    @pytest.mark.parametrize("seed", range(4))
    def test_psi_rewriting_preserves_function(self, seed):
        from repro.core.rewriting import RewriteOptions, rewrite_for_plim

        mig = random_mig(seed + 50, num_pis=5, num_gates=30, num_pos=3)
        rewritten = rewrite_for_plim(mig, RewriteOptions(use_psi=True))
        assert truth_tables(rewritten) == truth_tables(mig)
        assert rewritten.num_gates <= mig.cleanup()[0].num_gates


class TestCommonPairAllShared:
    """Regression: two inner gates whose *effective* child triples are the
    same multiset (one gate is the structural complement-dual of the
    other, so strashing cannot merge them).  ``_common_pair`` must hand
    both sides the *same* third-signal leftover — handing side b a
    different one rewrote ``⟨g ¬g' x⟩`` cones to the wrong function."""

    def _dual_cone(self):
        mig = Mig()
        x1, x2, x3 = mig.add_pi("x1"), mig.add_pi("x2"), mig.add_pi("x3")
        g5 = mig.add_maj(x2, ~x3, ~x1)
        g6 = mig.add_maj(x1, x3, ~x2)  # functionally ~g5, structurally distinct
        mig.add_po(mig.add_maj(g5, ~g6, x1), "f")
        return mig

    def test_common_pair_same_leftover_on_both_sides(self):
        from repro.mig.algebra import _common_pair
        from repro.mig.signal import Signal

        a = tuple(Signal.make(n, inv) for n, inv in ((2, False), (3, True), (1, True)))
        b = tuple(Signal.make(n, inv) for n, inv in ((1, True), (3, True), (2, False)))
        (x, y), p, q = _common_pair(a, b)
        assert p == q
        assert sorted(map(int, (x, y, p))) == sorted(map(int, a))

    def test_distributivity_pass_preserves_function(self):
        from repro.mig.algebra import pass_distributivity_rl

        mig = self._dual_cone()
        assert truth_tables(pass_distributivity_rl(mig)) == truth_tables(mig)

    def test_both_engines_preserve_function(self):
        from repro.core.rewriting import RewriteOptions, rewrite_for_plim

        mig = self._dual_cone()
        for engine in ("worklist", "rebuild"):
            rewritten = rewrite_for_plim(mig, RewriteOptions(engine=engine))
            assert truth_tables(rewritten) == truth_tables(mig), engine
