"""Documentation health: public-API doctests and intra-repo links.

Two rot gates, both also run by the CI ``docs`` job:

* every runnable example in the public-API docstrings (the exports of
  ``repro/__init__.py`` plus the modules that carry them) must still
  produce its documented output;
* every intra-repo link in ``README.md`` and ``docs/*.md`` must resolve
  (``tools/check_links.py``).
"""

from __future__ import annotations

import doctest
import importlib
import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: modules whose docstring examples are part of the public contract —
#: the ``repro`` package docstring itself, the modules defining the
#: re-exported API (compile_mig, compile_many, RewriteOptions,
#: rewrite_for_plim, rewrite_depth, pareto_sweep, Mig), and the modules
#: that carried doctests before this gate existed
DOCTEST_MODULES = [
    "repro",
    "repro.core.batch",
    "repro.core.cache",
    "repro.core.pareto",
    "repro.core.pipeline",
    "repro.core.resilience",
    "repro.core.rewriting",
    "repro.mig.graph",
    "repro.mig.signal",
    "repro.mig.simulate",
    "repro.utils.bits",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_public_api_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False, optionflags=doctest.ELLIPSIS)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {module_name}"


def test_public_exports_have_docstrings():
    """Every name re-exported from ``repro`` carries a docstring."""
    repro = importlib.import_module("repro")
    missing = [
        name
        for name in repro.__all__
        if name != "__version__" and not (getattr(repro, name).__doc__ or "").strip()
    ]
    assert not missing, f"exports without docstrings: {missing}"


def _load_check_links():
    """Import tools/check_links.py by path (tools/ is not a package)."""
    path = REPO_ROOT / "tools" / "check_links.py"
    spec = importlib.util.spec_from_file_location("check_links", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_tree_exists():
    for page in ("architecture.md", "rewriting.md", "cli.md"):
        assert (REPO_ROOT / "docs" / page).is_file(), f"docs/{page} missing"


def test_readme_links_docs_tree():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for page in ("docs/architecture.md", "docs/rewriting.md", "docs/cli.md"):
        assert page in readme, f"README.md does not link {page}"


def test_intra_repo_links_resolve():
    checker = _load_check_links()
    errors = checker.check_links(REPO_ROOT)
    assert not errors, "\n".join(errors)


def test_link_checker_catches_breakage(tmp_path):
    """The gate itself must fail on a dangling target (meta-test)."""
    checker = _load_check_links()
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "[ok](docs/good.md) and [bad](docs/missing.md)", encoding="utf-8"
    )
    (tmp_path / "docs" / "good.md").write_text(
        "[back](../README.md)", encoding="utf-8"
    )
    errors = checker.check_links(tmp_path)
    assert len(errors) == 1 and "docs/missing.md" in errors[0]
