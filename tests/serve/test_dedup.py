"""Concurrent request dedup: N identical submissions, one compile.

The contract under test (the tentpole's headline behavior): concurrent
identical submissions collapse onto one in-flight job whose response
fans out *byte-identical* to every waiter, and distinct circuits (or
distinct options) never share a dedup group.
"""

from __future__ import annotations

import asyncio

from .conftest import apost, make_app, run_concurrent


class TestIdenticalCollapse:
    def test_n_identical_one_compile(self, circuit_payloads):
        app = make_app(workers=2, queue_limit=32)
        payload = circuit_payloads["mig"]

        async def main():
            return await asyncio.gather(
                *[apost(app, "/compile", payload) for _ in range(10)]
            )

        responses = run_concurrent(main())
        assert all(r.status == 200 for r in responses)
        # exactly one compile ran...
        assert app.counters["compiles"] == 1
        assert app.dedup.leaders == 1
        assert app.dedup.collapsed == 9
        # ...and every waiter got the leader's exact bytes
        assert len({r.body for r in responses}) == 1
        assert responses[0].json()["cached"] is False

    def test_collapse_under_tiny_queue(self, circuit_payloads):
        # 10 identical requests against queue_limit=1: followers join the
        # leader *before* admission, so dedup absorbs what shedding would
        # otherwise reject — zero 429s for an identical burst
        app = make_app(workers=1, queue_limit=1)
        payload = circuit_payloads["mig"]

        async def main():
            return await asyncio.gather(
                *[apost(app, "/compile", payload) for _ in range(10)]
            )

        responses = run_concurrent(main())
        assert [r.status for r in responses] == [200] * 10
        assert app.counters["shed"] == 0
        assert app.counters["compiles"] == 1


class TestSynchronousJoin:
    """The join happens before any await — pinned via its observable
    consequences: parse errors share a group, and the collapse counts
    hold under repeated bursts with no executor-sizing assistance."""

    def test_parse_error_fans_out_to_followers(self):
        # followers join on the raw payload before the leader parses, so
        # an unparseable burst costs one parse and one structured 422,
        # fanned out byte-identical — not five independent parses
        app = make_app(workers=2, queue_limit=32)
        payload = {"circuit": "garbage\n", "format": "mig"}

        async def main():
            return await asyncio.gather(
                *[apost(app, "/compile", payload) for _ in range(5)]
            )

        responses = run_concurrent(main())
        assert [r.status for r in responses] == [422] * 5
        assert app.dedup.leaders == 1
        assert app.dedup.collapsed == 4
        assert len({r.body for r in responses}) == 1
        assert responses[0].json()["error"]["code"] == "parse-error"

    def test_collapse_is_deterministic_across_bursts(self, circuit_payloads):
        # the regression this suite exists for: burst collapse must not
        # depend on executor scheduling.  Every burst — cold or warm —
        # yields exactly one leader; the compile count never exceeds one.
        app = make_app(workers=2, queue_limit=32)
        payload = circuit_payloads["mig"]

        for burst in range(1, 4):
            async def main():
                return await asyncio.gather(
                    *[apost(app, "/compile", payload) for _ in range(8)]
                )

            responses = run_concurrent(main())
            assert all(r.status == 200 for r in responses)
            assert len({r.body for r in responses}) == 1
            assert app.counters["compiles"] == 1
            assert app.dedup.leaders == burst
            assert app.dedup.collapsed == burst * 7

    def test_textual_variants_get_separate_groups(self, circuit_payloads):
        # dedup identity is the exact payload: the same circuit with a
        # trailing blank line is a different group (the fingerprint-keyed
        # cache, not the dedup table, unifies semantic duplicates)
        app = make_app(workers=2, queue_limit=32)
        a = circuit_payloads["mig"]
        b = {"circuit": a["circuit"] + "\n", "format": "mig"}

        async def main():
            return await asyncio.gather(
                apost(app, "/compile", a), apost(app, "/compile", b)
            )

        responses = run_concurrent(main())
        assert [r.status for r in responses] == [200, 200]
        assert app.dedup.leaders == 2
        assert app.dedup.collapsed == 0


class TestNoCrossTalk:
    def test_distinct_circuits_compile_separately(
        self, circuit_payloads, other_mig_text
    ):
        app = make_app(workers=2, queue_limit=32)
        a = circuit_payloads["mig"]
        b = {"circuit": other_mig_text, "format": "mig"}

        async def main():
            return await asyncio.gather(
                *[apost(app, "/compile", a) for _ in range(4)],
                *[apost(app, "/compile", b) for _ in range(4)],
            )

        responses = run_concurrent(main())
        assert all(r.status == 200 for r in responses)
        assert app.counters["compiles"] == 2
        assert app.dedup.leaders == 2
        a_bodies = {r.body for r in responses[:4]}
        b_bodies = {r.body for r in responses[4:]}
        assert len(a_bodies) == 1 and len(b_bodies) == 1
        assert a_bodies != b_bodies
        names = {r.json()["name"] for r in responses}
        assert len(names) == 2 and "ctrl" in names

    def test_distinct_options_compile_separately(self, circuit_payloads):
        app = make_app(workers=2, queue_limit=32)
        size = dict(circuit_payloads["mig"])
        depth = dict(circuit_payloads["mig"], options={"objective": "depth"})

        async def main():
            return await asyncio.gather(
                *[apost(app, "/compile", size) for _ in range(3)],
                *[apost(app, "/compile", depth) for _ in range(3)],
            )

        responses = run_concurrent(main())
        assert all(r.status == 200 for r in responses)
        assert app.counters["compiles"] == 2

    def test_sequential_requests_do_not_dedup(self, circuit_payloads):
        # dedup is an *in-flight* mechanism: the second sequential request
        # is answered by the cache, not by a dedup join
        app = make_app()
        payload = circuit_payloads["mig"]

        async def main():
            first = await apost(app, "/compile", payload)
            second = await apost(app, "/compile", payload)
            return first, second

        first, second = asyncio.run(main())
        assert app.dedup.collapsed == 0
        assert first.json()["cached"] is False
        assert second.json()["cached"] is True
