"""The protocol-level serve harness: an in-process client, no sockets.

Tier-1 serve tests drive ``PlimServer.handle(Request)`` directly — the
exact object the socket transport drives — so every endpoint, fault,
shed and drain behavior is exercised deterministically with zero network
(the byte-level HTTP framing has its own ``socket``-marked smoke tests).

Two calling styles:

* ``post(app, path, obj)`` / ``get(app, path)`` — synchronous one-shots,
  each wrapping one ``asyncio.run``.  Fine for sequential protocol tests
  (the app survives repeated event loops by design).
* ``async`` tests needing concurrency (dedup, shed, jobs) write a
  coroutine against ``apost``/``aget`` and run it with one
  ``asyncio.run`` — jobs especially *must* stay on one loop, since a
  submitted job is a task of the loop that accepted it.
"""

from __future__ import annotations

import asyncio
import base64
import io

import pytest

from repro.circuits.registry import build
from repro.mig.io_aiger import write_aiger
from repro.mig.io_blif import write_blif
from repro.mig.io_mig import write_mig
from repro.serve.app import PlimServer, ServerConfig
from repro.serve.protocol import Request, Response, canonical_json


def make_app(**config_kwargs) -> PlimServer:
    """A fresh in-memory server; kwargs override ServerConfig fields."""
    return PlimServer(ServerConfig(**config_kwargs))


async def aget(app: PlimServer, path: str) -> Response:
    return await app.handle(Request("GET", path))


async def apost(app: PlimServer, path: str, obj=None, body: bytes = b"") -> Response:
    if obj is not None:
        body = canonical_json(obj)
    return await app.handle(Request("POST", path, body))


def get(app: PlimServer, path: str) -> Response:
    return asyncio.run(aget(app, path))


def post(app: PlimServer, path: str, obj=None, body: bytes = b"") -> Response:
    return asyncio.run(apost(app, path, obj, body))


def run_concurrent(coro):
    """``asyncio.run`` for the concurrency suites.

    Dedup joins happen *synchronously* on the event loop (the raw-payload
    key needs no executor hop), so burst collapse is structurally
    deterministic under any executor sizing — no wide-executor workaround
    is needed, and these tests must keep passing on the stock loop
    configuration precisely because determinism is the contract.
    """
    return asyncio.run(coro)


async def poll_job(app: PlimServer, job_id: str, timeout_s: float = 60.0) -> dict:
    """Await a job's terminal snapshot (tight poll; test-only)."""
    for _ in range(int(timeout_s / 0.01)):
        snapshot = (await aget(app, f"/jobs/{job_id}")).json()
        if snapshot["state"] in ("done", "failed"):
            return snapshot
        await asyncio.sleep(0.01)
    raise AssertionError(f"job {job_id} did not finish within {timeout_s}s")


# ----------------------------------------------------------------------
# circuit payloads (one registry circuit in every accepted format)
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def ctrl_mig():
    return build("ctrl", "ci")


@pytest.fixture(scope="session")
def mig_text(ctrl_mig) -> str:
    buf = io.StringIO()
    write_mig(ctrl_mig, buf)
    return buf.getvalue()


@pytest.fixture(scope="session")
def blif_text(ctrl_mig) -> str:
    buf = io.StringIO()
    write_blif(ctrl_mig, buf)
    return buf.getvalue()


@pytest.fixture(scope="session")
def aag_text(ctrl_mig) -> str:
    buf = io.StringIO()
    write_aiger(ctrl_mig, buf, binary=False)
    return buf.getvalue()


@pytest.fixture(scope="session")
def aig_b64(ctrl_mig) -> str:
    buf = io.BytesIO()
    write_aiger(ctrl_mig, buf, binary=True)
    return base64.b64encode(buf.getvalue()).decode("ascii")


@pytest.fixture(scope="session")
def circuit_payloads(mig_text, blif_text, aag_text, aig_b64) -> dict:
    """format name → the minimal compile-request payload for it."""
    return {
        "mig": {"circuit": mig_text, "format": "mig"},
        "blif": {"circuit": blif_text, "format": "blif"},
        "aag": {"circuit": aag_text, "format": "aag"},
        "aig": {"circuit_b64": aig_b64, "format": "aig"},
    }


@pytest.fixture(scope="session")
def other_mig_text() -> str:
    """A second, distinct circuit (dedup cross-talk tests)."""
    buf = io.StringIO()
    write_mig(build("int2float", "ci"), buf)
    return buf.getvalue()
