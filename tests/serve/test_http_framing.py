"""Hostile-input framing guards, testable without a socket.

``handle_connection`` consumes an ``asyncio.StreamReader`` and a
duck-typed writer — neither needs a real transport — so the paths a
polite client never exercises (over-long lines, stalled reads) are
pinned here in tier-1.  The happy-path byte framing stays with the
``socket``-marked smoke tests.
"""

from __future__ import annotations

import asyncio

from repro.serve.http import _MAX_LINE, handle_connection

from .conftest import make_app


class RecordingWriter:
    """The slice of StreamWriter the connection handler touches."""

    def __init__(self):
        self.chunks: list[bytes] = []
        self.closed = False

    def write(self, data: bytes) -> None:
        self.chunks.append(data)

    async def drain(self) -> None:
        pass

    def close(self) -> None:
        self.closed = True

    async def wait_closed(self) -> None:
        pass

    @property
    def data(self) -> bytes:
        return b"".join(self.chunks)


def _drive(app, feed: bytes, *, eof: bool = True) -> RecordingWriter:
    """Run one connection over canned client bytes; return the writer."""

    async def main():
        reader = asyncio.StreamReader(limit=_MAX_LINE)
        if feed:
            reader.feed_data(feed)
        if eof:
            reader.feed_eof()
        writer = RecordingWriter()
        await handle_connection(app, reader, writer)
        return writer

    return asyncio.run(main())


class TestOversizedLines:
    def test_overlong_request_line_is_400(self):
        writer = _drive(make_app(), b"A" * (2 * _MAX_LINE), eof=False)
        assert writer.data.startswith(b"HTTP/1.1 400 ")
        assert b"request line too long" in writer.data
        assert writer.closed

    def test_overlong_header_line_is_400(self):
        # the header readuntil raises LimitOverrunError just like the
        # request line's; both must come back as a structured 400, never
        # an unhandled exception killing the connection task silently
        feed = (
            b"GET /healthz HTTP/1.1\r\n"
            + b"X-Junk: " + b"a" * (2 * _MAX_LINE) + b"\r\n\r\n"
        )
        writer = _drive(make_app(), feed)
        assert writer.data.startswith(b"HTTP/1.1 400 ")
        assert b"headers too large" in writer.data
        assert writer.closed


class TestReadDeadline:
    def test_silent_client_gets_408(self):
        # connect-and-say-nothing: without the deadline this handler
        # would await readuntil forever (admission control only kicks in
        # after a request is parsed — the classic slow-loris hole)
        writer = _drive(make_app(read_timeout_s=0.05), b"", eof=False)
        assert writer.data.startswith(b"HTTP/1.1 408 ")
        assert b'"code":"request-timeout"' in writer.data
        assert writer.closed

    def test_trickled_headers_hit_the_same_deadline(self):
        # a request line alone, never finished: the deadline covers the
        # whole read, not just the first byte
        writer = _drive(
            make_app(read_timeout_s=0.05),
            b"GET /healthz HTTP/1.1\r\n",
            eof=False,
        )
        assert writer.data.startswith(b"HTTP/1.1 408 ")

    def test_default_config_has_a_finite_deadline(self):
        # the guard only exists if it is on by default — None would
        # reopen the slow-loris hole for every stock deployment
        assert make_app().config.read_timeout_s is not None

    def test_complete_request_unaffected_by_deadline(self):
        writer = _drive(
            make_app(read_timeout_s=5.0),
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        assert writer.data.startswith(b"HTTP/1.1 200 ")
        assert b'"status":"ok"' in writer.data
