"""Golden request/response round-trips for every endpoint and format.

The compile responses are pinned against the library ground truth:
:func:`repro.core.pipeline.compile_mig` run directly on the re-parsed
circuit must produce byte-for-byte the record the server returns —
the server is a transport, never a different compiler.
"""

from __future__ import annotations

import json

from repro.core.pipeline import compile_mig
from repro.serve.protocol import canonical_json, parse_circuit
from repro.serve.worker import build_record, request_option_sets

from .conftest import get, make_app, post


#: per-stage wall-clock fields: genuinely nondeterministic, so record
#: comparisons normalize them away (their presence is still asserted)
TIMING_FIELDS = (
    "rewrite_seconds", "schedule_seconds", "translate_seconds", "verify_seconds",
)


def sans_timings(record: dict) -> dict:
    """``record`` with the (nondeterministic) timing fields removed,
    after checking they are present and sane."""
    out = dict(record)
    for fld in TIMING_FIELDS:
        value = out.pop(fld)
        assert isinstance(value, float) and value >= 0.0, (fld, value)
    return out


def expected_compile_body(payload: dict, options: dict = None) -> bytes:
    """The ground-truth response bytes for a compile request, with the
    timing fields normalized away (compare via :func:`normalized_body`)."""
    from repro.serve.protocol import compile_options

    normalized = compile_options({"options": options} if options else {})
    mig = parse_circuit(payload)
    ropts, copts = request_option_sets(normalized)
    result = compile_mig(
        mig,
        rewrite=normalized["rewrite"],
        rewrite_options=ropts,
        compiler_options=copts,
    )
    record = sans_timings(build_record(mig.name, result))
    return canonical_json({**record, "cached": False})


def normalized_body(response) -> bytes:
    """The response's bytes re-canonicalized without the timing fields —
    byte-comparable against :func:`expected_compile_body`."""
    return canonical_json(sans_timings(response.json()))


class TestHealthz:
    def test_ok(self):
        app = make_app()
        response = get(app, "/healthz")
        assert response.status == 200
        assert response.body == b'{"draining":false,"status":"ok"}'


class TestCompileRoundTrips:
    def test_every_format_matches_direct_pipeline(self, circuit_payloads):
        # fresh app per format: aag and aig decode to the *same* AIG
        # decomposition (same fingerprint), so a shared app would
        # legitimately answer the second from cache
        for fmt, payload in circuit_payloads.items():
            app = make_app()
            response = post(app, "/compile", payload)
            assert response.status == 200, (fmt, response.body)
            assert normalized_body(response) == expected_compile_body(payload), fmt
            body = response.json()
            assert body["cached"] is False
            assert body["num_gates"] > 0
            assert body["num_instructions"] > 0
            assert body["program"].strip()
            assert body["mig"].startswith(".mig")

    def test_second_request_is_cache_answered(self, circuit_payloads):
        app = make_app()
        payload = circuit_payloads["mig"]
        first = post(app, "/compile", payload).json()
        second = post(app, "/compile", payload).json()
        assert first["cached"] is False
        assert second["cached"] is True
        # identical answer apart from the cached flag
        first["cached"] = second["cached"]
        assert first == second
        assert app.counters["compiles"] == 1
        assert app.counters["cache_answers"] == 1

    def test_options_change_the_answer_identity(self, circuit_payloads):
        app = make_app()
        payload = dict(circuit_payloads["mig"])
        post(app, "/compile", payload)
        depth = dict(payload, options={"objective": "depth"})
        response = post(app, "/compile", depth)
        assert response.status == 200
        # different options ⇒ different cache identity ⇒ a real compile
        assert response.json()["cached"] is False
        assert app.counters["compiles"] == 2

    def test_rewrite_false(self, circuit_payloads):
        payload = dict(circuit_payloads["mig"], options={"rewrite": False})
        response = post(make_app(), "/compile", payload)
        assert response.status == 200
        assert normalized_body(response) == expected_compile_body(
            circuit_payloads["mig"], {"rewrite": False}
        )


class TestCacheStatsEndpoint:
    def test_shape_and_consistency(self, circuit_payloads):
        app = make_app()
        post(app, "/compile", circuit_payloads["mig"])
        post(app, "/compile", circuit_payloads["mig"])
        snapshot = get(app, "/cache/stats").json()
        counters = snapshot["counters"]
        assert set(counters) >= {
            "hits", "misses", "stores", "evictions", "errors",
            "lookups", "hit_rate",
        }
        assert counters["lookups"] == counters["hits"] + counters["misses"]
        assert 0.0 <= counters["hit_rate"] <= 1.0
        assert counters["hits"] >= 1  # the second request's answer
        assert snapshot["memory"]["entries"] >= 1

    def test_matches_cli_snapshot_shape(self, tmp_path):
        # the CLI --json path and the endpoint serve the same snapshot
        from repro.core.cache import SynthesisCache

        app = make_app(cache_dir=str(tmp_path / "c"))
        endpoint = get(app, "/cache/stats").json()
        cli_view = SynthesisCache(str(tmp_path / "c")).stats_snapshot()
        assert set(endpoint) == set(cli_view)
        assert set(endpoint["counters"]) == set(cli_view["counters"])


class TestServerStats:
    def test_counters_track_requests(self, circuit_payloads):
        app = make_app()
        post(app, "/compile", circuit_payloads["mig"])
        stats = get(app, "/stats").json()
        assert stats["counters"]["requests"] >= 2  # compile + this stats call
        assert stats["counters"]["compiles"] == 1
        assert stats["admitted"] == 0
        assert stats["draining"] is False
        assert stats["dedup"]["inflight"] == 0


class TestErrorPaths:
    def test_unknown_endpoint(self):
        response = get(make_app(), "/nope")
        assert response.status == 404
        assert response.json()["error"]["code"] == "not-found"

    def test_method_not_allowed(self):
        response = post(make_app(), "/healthz", {"x": 1})
        assert response.status == 405
        assert response.json()["error"]["code"] == "method-not-allowed"

    def test_get_compile_not_allowed(self):
        assert get(make_app(), "/compile").status == 405

    def test_bad_json_body(self):
        response = post(make_app(), "/compile", body=b"{broken")
        assert response.status == 400
        assert response.json()["error"]["code"] == "bad-request"

    def test_parse_error_is_422(self):
        response = post(
            make_app(), "/compile", {"circuit": "junk\n", "format": "mig"}
        )
        assert response.status == 422
        assert response.json()["error"]["code"] == "parse-error"

    def test_payload_too_large(self, circuit_payloads):
        app = make_app(max_body_bytes=64)
        response = post(app, "/compile", circuit_payloads["mig"])
        assert response.status == 413
        assert response.json()["error"]["code"] == "payload-too-large"

    def test_query_strings_are_ignored_in_routing(self):
        assert get(make_app(), "/healthz?verbose=1").status == 200
