"""The job model: 202 + id now, streamed progress until the result.

Long work (``pareto``, ``cost-loop``) never holds a request open: the
server answers with a job id immediately, runs the sweep off-loop
against a read-only cache view, and feeds every completed point/step
into the job's progress list via the drivers' ``progress=`` callbacks —
``GET /jobs/<id>`` polls a consistent snapshot at any moment.
"""

from __future__ import annotations

import asyncio

import pytest

from .conftest import aget, apost, make_app, poll_job


def job_payload(mig_text: str, kind: str, **params) -> dict:
    return {
        "kind": kind,
        "circuit": mig_text,
        "format": "mig",
        "params": params,
    }


class TestCostLoopJobs:
    def test_lifecycle_and_progress(self, mig_text):
        app = make_app()

        async def main():
            submitted = await apost(
                app,
                "/jobs",
                job_payload(mig_text, "cost-loop", effort=1, max_iterations=1),
            )
            assert submitted.status == 202
            body = submitted.json()
            assert body["job_id"] == "job-1"
            assert body["deduplicated"] is False
            return await poll_job(app, body["job_id"])

        snapshot = asyncio.run(main())
        assert snapshot["state"] == "done"
        assert snapshot["error"] is None
        result = snapshot["result"]
        assert result["iterations"] >= 1
        assert result["num_instructions"] > 0
        assert set(result["baseline"]) == set(result["final"])
        # the audit trail streamed: baseline step + one per candidate
        assert len(snapshot["progress"]) >= 2
        assert snapshot["progress"][0]["variant"] == "input"
        assert all(
            set(row) == {"iteration", "variant", "accepted", "metrics"}
            for row in snapshot["progress"]
        )


class TestParetoJobs:
    def test_lifecycle_and_progress(self, mig_text):
        app = make_app()

        async def main():
            submitted = await apost(
                app,
                "/jobs",
                job_payload(mig_text, "pareto", effort=2, max_points=1),
            )
            assert submitted.status == 202
            return await poll_job(app, submitted.json()["job_id"])

        snapshot = asyncio.run(main())
        assert snapshot["state"] == "done"
        front = snapshot["result"]
        assert front["circuit"] == "ctrl"
        assert len(front["points"]) >= 1
        assert front["incomplete"] is False
        # one progress row per computed point (both anchors at minimum)
        assert len(snapshot["progress"]) >= 2
        labels = {row["label"] for row in snapshot["progress"]}
        assert {"size", "depth"} <= labels


class TestJobDedup:
    def test_identical_inflight_submissions_share_a_job(self, mig_text):
        app = make_app()
        payload = job_payload(mig_text, "cost-loop", effort=1, max_iterations=1)

        async def main():
            first = await apost(app, "/jobs", payload)
            second = await apost(app, "/jobs", payload)
            done = await poll_job(app, first.json()["job_id"])
            # finished jobs leave the in-flight table: resubmitting now
            # creates a fresh job (whose compiles hit the shared cache)
            third = await apost(app, "/jobs", payload)
            return first.json(), second.json(), done, third.json()

        first, second, done, third = asyncio.run(main())
        assert second["job_id"] == first["job_id"]
        assert second["deduplicated"] is True
        assert done["state"] == "done"
        assert third["job_id"] != first["job_id"]
        assert third["deduplicated"] is False
        assert app.counters["jobs"] == 2  # two real jobs, one dedup join

    def test_distinct_params_get_distinct_jobs(self, mig_text):
        app = make_app()

        async def main():
            a = await apost(
                app,
                "/jobs",
                job_payload(mig_text, "cost-loop", effort=1, max_iterations=1),
            )
            b = await apost(
                app,
                "/jobs",
                job_payload(mig_text, "cost-loop", effort=1, max_iterations=2),
            )
            ids = (a.json()["job_id"], b.json()["job_id"])
            for job_id in ids:
                await poll_job(app, job_id)
            return ids

        a_id, b_id = asyncio.run(main())
        assert a_id != b_id


class TestJobValidationAndListing:
    def test_unknown_kind(self, mig_text):
        response = asyncio.run(
            apost(make_app(), "/jobs", job_payload(mig_text, "fuzz"))
        )
        assert response.status == 400
        assert response.json()["error"]["code"] == "bad-request"

    def test_unknown_params(self, mig_text):
        response = asyncio.run(
            apost(
                make_app(),
                "/jobs",
                job_payload(mig_text, "pareto", bogus=1),
            )
        )
        assert response.status == 400

    def test_missing_job_is_404(self):
        response = asyncio.run(aget(make_app(), "/jobs/job-99"))
        assert response.status == 404

    def test_listing(self, mig_text):
        app = make_app()

        async def main():
            submitted = await apost(
                app,
                "/jobs",
                job_payload(mig_text, "cost-loop", effort=1, max_iterations=1),
            )
            await poll_job(app, submitted.json()["job_id"])
            return (await aget(app, "/jobs")).json()

        listing = asyncio.run(main())
        assert listing["jobs"][0]["id"] == "job-1"
        assert listing["jobs"][0]["state"] == "done"
        assert listing["jobs"][0]["progress_rows"] >= 1


class TestFinishedJobRetention:
    def test_registry_evicts_oldest_finished(self):
        from repro.serve.jobs import JobRegistry

        registry = JobRegistry(max_finished=2)
        ids = []
        for index in range(4):
            job, created = registry.submit("pareto", f"key-{index}")
            assert created
            registry.start(job.id)
            registry.finish(job.id, {"n": index})
            ids.append(job.id)
        # the two oldest finished records are gone, the newest two remain
        assert registry.get(ids[0]) is None and registry.snapshot(ids[0]) is None
        assert registry.get(ids[1]) is None
        assert [s["id"] for s in registry.summaries()] == ids[2:]

    def test_running_jobs_never_evicted(self):
        from repro.serve.jobs import JobRegistry

        registry = JobRegistry(max_finished=1)
        pinned, _ = registry.submit("pareto", "key-pinned")
        registry.start(pinned.id)
        for index in range(3):
            job, _ = registry.submit("pareto", f"key-{index}")
            registry.start(job.id)
            registry.fail(job.id, {"code": "internal-error", "message": "x"})
        # the running job predates every finished one yet survives the cap
        assert registry.get(pinned.id) is not None
        assert registry.active_count() == 1
        assert sum(1 for s in registry.summaries() if s["state"] == "failed") == 1

    def test_evicted_job_is_404_end_to_end(self, mig_text):
        # a long-lived server must not grow memory per job served; the
        # price is that ancient job ids stop resolving — pinned here so
        # the 404 is a documented contract, not an accident
        app = make_app(max_finished_jobs=1)

        async def main():
            first = await apost(
                app,
                "/jobs",
                job_payload(mig_text, "cost-loop", effort=1, max_iterations=1),
            )
            first_id = first.json()["job_id"]
            await poll_job(app, first_id)
            second = await apost(
                app,
                "/jobs",
                job_payload(mig_text, "cost-loop", effort=1, max_iterations=2),
            )
            second_id = second.json()["job_id"]
            await poll_job(app, second_id)
            return first_id, second_id, (await aget(app, f"/jobs/{first_id}"))

        first_id, second_id, stale = asyncio.run(main())
        assert first_id != second_id
        assert stale.status == 404
        listing = asyncio.run(aget(app, "/jobs")).json()
        assert [j["id"] for j in listing["jobs"]] == [second_id]


class TestJobTimeout:
    def test_deadline_fails_the_job_with_structured_error(self, mig_text):
        app = make_app(job_timeout_s=0.001)

        async def main():
            submitted = await apost(
                app,
                "/jobs",
                job_payload(mig_text, "cost-loop", effort=1, max_iterations=1),
            )
            return await poll_job(app, submitted.json()["job_id"])

        snapshot = asyncio.run(main())
        assert snapshot["state"] == "failed"
        assert snapshot["error"]["code"] == "timeout"
        # a timed-out job's report is frozen: the zombie thread's late
        # progress appends are dropped by the registry guard
        assert snapshot["result"] is None
