"""Deterministic fault injection through the serve stack.

Reuses :class:`~repro.core.resilience.FaultPlan` — the same lever every
pooled driver in this codebase is tested with — scoped to the server's
``"compile"`` phase.  Worker crashes, deadlines, queue shedding and the
drain contract all come back as *structured protocol errors*, never as
wedged requests or raw exceptions.

The pooled tests spawn real worker processes (that is the point: a
genuine ``os._exit`` in a genuine worker); they are the slowest tests in
the serve suite but stay well under CI budgets.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.resilience import Fault, FaultPlan

from .conftest import aget, apost, make_app


def crash_plan(attempts=(1,)) -> FaultPlan:
    return FaultPlan(phases={"compile": {0: Fault("exit", attempts=attempts)}})


def sleep_plan(seconds: float) -> FaultPlan:
    return FaultPlan(
        phases={"compile": {0: Fault("sleep", seconds=seconds, attempts=())}}
    )


class TestCrashPaths:
    def test_inline_crash_is_structured_502(self, circuit_payloads):
        app = make_app(fault_plan=crash_plan())
        response = asyncio.run(apost(app, "/compile", circuit_payloads["mig"]))
        assert response.status == 502
        error = response.json()["error"]
        assert error["code"] == "worker-crash"
        assert error["attempts"] == 1
        assert app.counters["failures"] == 1

    def test_pooled_worker_exit_is_structured_502(self, circuit_payloads):
        # a genuine os._exit in a genuine supervised worker process
        app = make_app(pooled=True, fault_plan=crash_plan())
        response = asyncio.run(apost(app, "/compile", circuit_payloads["mig"]))
        assert response.status == 502
        assert response.json()["error"]["code"] == "worker-crash"

    def test_batch_class_retries_past_the_crash(self, circuit_payloads):
        # the fault fires on attempt 1 only; class=batch grants a retry,
        # so the same request that 502s interactively succeeds as batch
        app = make_app(pooled=True, fault_plan=crash_plan(attempts=(1,)))
        payload = dict(circuit_payloads["mig"])
        payload["class"] = "batch"
        response = asyncio.run(apost(app, "/compile", payload))
        assert response.status == 200, response.body
        assert response.json()["cached"] is False

    def test_error_fans_out_to_dedup_followers(self, circuit_payloads):
        # an error response is published to the whole dedup group —
        # followers of a failed leader see the identical error bytes
        app = make_app(fault_plan=crash_plan())
        payload = circuit_payloads["mig"]

        async def main():
            return await asyncio.gather(
                *[apost(app, "/compile", payload) for _ in range(5)]
            )

        responses = asyncio.run(main())
        assert [r.status for r in responses] == [502] * 5
        assert len({r.body for r in responses}) == 1
        assert app.counters["failures"] == 1  # one leader failed, once


class TestInjectedException:
    def test_unexpected_task_exception_is_500(self, circuit_payloads):
        plan = FaultPlan(phases={"compile": {0: Fault("raise")}})
        app = make_app(fault_plan=plan)
        response = asyncio.run(apost(app, "/compile", circuit_payloads["mig"]))
        assert response.status == 500
        error = response.json()["error"]
        assert error["code"] == "internal-error"
        assert error["error_type"] == "InjectedFault"


class TestDeadline:
    def test_pooled_timeout_is_504(self, circuit_payloads):
        # the injected sleep (fires on every attempt) blows the 0.5s
        # per-attempt deadline; the supervisor kills the worker and the
        # client sees a structured 504 long before the sleep would end
        app = make_app(
            pooled=True, request_timeout_s=0.5, fault_plan=sleep_plan(30.0)
        )
        response = asyncio.run(apost(app, "/compile", circuit_payloads["mig"]))
        assert response.status == 504
        assert response.json()["error"]["code"] == "timeout"


class TestQueueFull:
    def test_shed_with_retry_after(self, circuit_payloads, other_mig_text):
        app = make_app(queue_limit=1, fault_plan=sleep_plan(2.0))

        async def main():
            slow = asyncio.ensure_future(
                apost(app, "/compile", circuit_payloads["mig"])
            )
            # deterministic hand-off: wait until the slow leader holds
            # its admission slot before submitting the second circuit
            while app._admitted < 1:
                await asyncio.sleep(0.01)
            shed = await apost(
                app, "/compile", {"circuit": other_mig_text, "format": "mig"}
            )
            return shed, await slow

        shed, slow = asyncio.run(main())
        assert shed.status == 429
        error = shed.json()["error"]
        assert error["code"] == "queue-full"
        assert error["retry_after"] == app.config.retry_after_s
        assert ("Retry-After", f"{app.config.retry_after_s:g}") in shed.headers
        assert app.counters["shed"] == 1
        # the slow request itself still finished fine
        assert slow.status == 200


class TestDrain:
    def test_draining_rejects_new_work_finishes_inflight(
        self, circuit_payloads, other_mig_text
    ):
        app = make_app(queue_limit=8, fault_plan=sleep_plan(0.5))

        async def main():
            inflight = asyncio.ensure_future(
                apost(app, "/compile", circuit_payloads["mig"])
            )
            while app._admitted < 1:
                await asyncio.sleep(0.01)
            app.begin_drain()
            rejected_compile = await apost(
                app, "/compile", {"circuit": other_mig_text, "format": "mig"}
            )
            rejected_job = await apost(
                app,
                "/jobs",
                {
                    "kind": "cost-loop",
                    "circuit": other_mig_text,
                    "format": "mig",
                },
            )
            health = await aget(app, "/healthz")
            finished = await inflight
            await asyncio.wait_for(app.drained(), timeout=10)
            return rejected_compile, rejected_job, health, finished

        rejected_compile, rejected_job, health, finished = asyncio.run(main())
        assert rejected_compile.status == 503
        assert rejected_compile.json()["error"]["code"] == "draining"
        assert rejected_job.status == 503
        # reads stay up during the drain; the health answer says draining
        assert health.status == 200
        assert health.json()["draining"] is True
        # the in-flight request ran to completion despite the drain
        assert finished.status == 200
        assert app._admitted == 0
