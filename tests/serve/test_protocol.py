"""Protocol vocabulary tests: shapes, validation, golden error bytes."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import (
    FORMATS,
    ProtocolError,
    Request,
    canonical_json,
    compile_options,
    dedup_key,
    error_response,
    options_token,
    parse_circuit,
    request_class,
)


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == b'{"a":[2,3],"b":1}'

    def test_key_order_invariant(self):
        # two dicts with different insertion orders → identical bytes —
        # the property the dedup fan-out and golden tests stand on
        assert canonical_json({"x": 1, "y": 2}) == canonical_json({"y": 2, "x": 1})


class TestRequestJson:
    def test_parses_object(self):
        assert Request("POST", "/compile", b'{"a": 1}').json() == {"a": 1}

    @pytest.mark.parametrize(
        "body", [b"", b"not json", b"[1,2]", b'"string"', b"\xff\xfe"]
    )
    def test_rejects_non_object_bodies(self, body):
        with pytest.raises(ProtocolError) as excinfo:
            Request("POST", "/compile", body).json()
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad-request"


class TestErrorGoldenBytes:
    """Error bodies are part of the wire contract — pinned exactly."""

    def test_plain_error(self):
        response = error_response(404, "not-found", "no such endpoint: /x")
        assert response.status == 404
        assert response.body == (
            b'{"error":{"code":"not-found","message":"no such endpoint: /x"}}'
        )

    def test_queue_full_with_retry_after(self):
        response = error_response(
            429,
            "queue-full",
            "admission queue is full (8 in flight)",
            headers=(("Retry-After", "1"),),
            retry_after=1.0,
        )
        assert response.headers == (("Retry-After", "1"),)
        assert response.body == (
            b'{"error":{"code":"queue-full",'
            b'"message":"admission queue is full (8 in flight)",'
            b'"retry_after":1.0}}'
        )

    def test_protocol_error_round_trip(self):
        error = ProtocolError(504, "timeout", "deadline exceeded", attempts=2)
        response = error.response()
        assert response.status == 504
        assert response.json() == {
            "error": {
                "code": "timeout",
                "message": "deadline exceeded",
                "attempts": 2,
            }
        }


class TestParseCircuit:
    def test_every_format_parses(self, circuit_payloads, ctrl_mig):
        fingerprints = {}
        for fmt, payload in circuit_payloads.items():
            mig = parse_circuit(payload)
            assert mig.num_pos == ctrl_mig.num_pos
            fingerprints[fmt] = mig.fingerprint()
        # same-format determinism (the dedup identity): parsing twice
        # gives the same fingerprint
        again = parse_circuit(circuit_payloads["mig"])
        assert again.fingerprint() == fingerprints["mig"]

    def test_unknown_format(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_circuit({"circuit": "x", "format": "verilog"})
        assert excinfo.value.code == "unsupported-format"

    def test_circuit_and_b64_are_exclusive(self, mig_text):
        with pytest.raises(ProtocolError) as excinfo:
            parse_circuit(
                {"circuit": mig_text, "circuit_b64": "aGk=", "format": "mig"}
            )
        assert excinfo.value.code == "bad-request"
        with pytest.raises(ProtocolError):
            parse_circuit({"format": "mig"})

    def test_binary_format_requires_b64(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_circuit({"circuit": "aig 1 1 0 1 0", "format": "aig"})
        assert excinfo.value.code == "bad-request"

    def test_invalid_base64(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_circuit({"circuit_b64": "!!!", "format": "aig"})
        assert excinfo.value.code == "bad-request"

    def test_reader_parse_error_is_422(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_circuit({"circuit": "garbage\n", "format": "mig"})
        assert excinfo.value.status == 422
        assert excinfo.value.code == "parse-error"

    def test_text_via_b64_allowed_for_ascii_formats(self, mig_text):
        import base64

        payload = {
            "circuit_b64": base64.b64encode(mig_text.encode()).decode(),
            "format": "mig",
        }
        assert parse_circuit(payload).fingerprint() == parse_circuit(
            {"circuit": mig_text, "format": "mig"}
        ).fingerprint()

    def test_formats_table_matches_cli_readers(self):
        from repro.cli import READERS

        assert set(FORMATS.values()) == set(READERS)


class TestOptionValidation:
    def test_defaults_fill_in(self):
        assert compile_options({}) == {
            "rewrite": True,
            "effort": 4,
            "engine": "worklist",
            "objective": "size",
        }

    def test_token_is_canonical(self):
        a = compile_options({"options": {"effort": 2, "objective": "depth"}})
        b = compile_options({"options": {"objective": "depth", "effort": 2}})
        assert options_token(a) == options_token(b)

    @pytest.mark.parametrize(
        "options",
        [
            {"effort": 0},
            {"effort": "high"},
            # bool sneaks through a bare isinstance(int) check — it must
            # not validate (nor mint a "true" options token distinct
            # from 1 that flows into RewriteOptions as a bool)
            {"effort": True},
            {"rewrite": "yes"},
            {"engine": "magic"},
            {"objective": "speed"},
            {"bogus": 1},
        ],
    )
    def test_bad_options_rejected(self, options):
        with pytest.raises(ProtocolError) as excinfo:
            compile_options({"options": options})
        assert excinfo.value.status == 400

    def test_request_class(self):
        assert request_class({}) == "interactive"
        assert request_class({"class": "batch"}) == "batch"
        with pytest.raises(ProtocolError):
            request_class({"class": "realtime"})


class TestDedupKey:
    """The raw-payload dedup identity — synchronous by construction."""

    def test_identical_payloads_share_a_key(self, mig_text):
        options = compile_options({})
        a = dedup_key({"circuit": mig_text, "format": "mig"}, options)
        # irrelevant payload fields (class, options spelled elsewhere)
        # don't perturb the key; the options dict does
        b = dedup_key(
            {"circuit": mig_text, "format": "mig", "class": "batch"}, options
        )
        assert a == b

    def test_distinct_text_or_options_split(self, mig_text):
        base = compile_options({})
        depth = compile_options({"options": {"objective": "depth"}})
        key = dedup_key({"circuit": mig_text, "format": "mig"}, base)
        assert key != dedup_key(
            {"circuit": mig_text + "\n", "format": "mig"}, base
        )
        assert key != dedup_key({"circuit": mig_text, "format": "mig"}, depth)
        assert key != dedup_key({"circuit": mig_text, "format": "blif"}, base)

    def test_key_needs_no_parse(self):
        # garbage circuits still key fine — the whole point is that the
        # join can happen before (and regardless of) parsing
        options = compile_options({})
        key = dedup_key({"circuit": "garbage\n", "format": "mig"}, options)
        assert key == dedup_key({"circuit": "garbage\n", "format": "mig"}, options)
