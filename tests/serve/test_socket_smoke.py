"""Real-socket smoke tests (marked ``socket``; everything else in this
suite is in-process by design).

Two layers: the asyncio transport driven through a raw stream client
(byte-level HTTP framing), and the actual ``plimc serve`` process
surviving a compile and draining cleanly on SIGTERM.  Environments that
cannot bind a loopback socket skip rather than fail.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.protocol import canonical_json

from .conftest import make_app

pytestmark = pytest.mark.socket


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _can_bind() -> bool:
    try:
        _free_port()
        return True
    except OSError:
        return False


needs_loopback = pytest.mark.skipif(
    not _can_bind(), reason="cannot bind a loopback socket here"
)


async def _raw_http(port: int, method: str, path: str, body: bytes = b"") -> tuple:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: 127.0.0.1\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Content-Type: application/json\r\n\r\n"
    )
    writer.write(head.encode() + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    lines = header_blob.split(b"\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, payload


class TestInProcessSocket:
    @needs_loopback
    def test_framing_round_trip(self, circuit_payloads):
        from repro.serve.http import serve

        app = make_app()
        body = canonical_json(circuit_payloads["mig"])

        async def main():
            server = await serve(app, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                health = await _raw_http(port, "GET", "/healthz")
                compiled = await _raw_http(port, "POST", "/compile", body)
                missing = await _raw_http(port, "GET", "/nope")
            finally:
                server.close()
                await server.wait_closed()
            return health, compiled, missing

        health, compiled, missing = asyncio.run(main())
        status, headers, payload = health
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert int(headers["content-length"]) == len(payload)
        assert json.loads(payload) == {"draining": False, "status": "ok"}
        status, headers, payload = compiled
        assert status == 200
        record = json.loads(payload)
        assert record["num_instructions"] > 0
        assert missing[0] == 404

    @needs_loopback
    def test_malformed_request_line_is_400(self):
        from repro.serve.http import serve

        app = make_app()

        async def main():
            server = await serve(app, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(b"BOGUS\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
            return raw

        raw = asyncio.run(main())
        assert raw.startswith(b"HTTP/1.1 400 ")


class TestServeProcess:
    @needs_loopback
    def test_compile_then_sigterm_drains_clean(self, circuit_payloads, tmp_path):
        port = _free_port()
        env = dict(os.environ)
        repo_src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                str(port),
                "--cache-dir",
                str(tmp_path / "cache"),
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                try:
                    probe = socket.create_connection(
                        ("127.0.0.1", port), timeout=0.2
                    )
                    probe.close()
                    break
                except OSError:
                    if proc.poll() is not None:
                        pytest.fail(
                            f"server died early: {proc.stderr.read()}"
                        )
                    time.sleep(0.1)
            else:
                pytest.fail("server never started listening")

            import urllib.request

            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/compile",
                data=canonical_json(circuit_payloads["mig"]),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                record = json.loads(response.read())
            assert response.status == 200
            assert record["num_instructions"] > 0

            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=30)
            assert returncode == 0  # the graceful-drain contract
            stderr = proc.stderr.read()
            assert "draining" in stderr and "drained" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
