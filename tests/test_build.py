"""Unit tests for repro.mig.build (gate-level builders)."""

import pytest

from repro.errors import MigError
from repro.mig.build import LogicBuilder
from repro.mig.simulate import truth_tables


def tt(builder, signal):
    builder.mig.add_po(signal, "tt")
    tables = truth_tables(builder.mig)
    builder.mig._pos.pop()
    builder.mig._po_names.pop()
    return tables["tt"]


@pytest.fixture
def bld():
    builder = LogicBuilder()
    a = builder.input("a")
    b = builder.input("b")
    c = builder.input("c")
    return builder, a, b, c


# Truth-table columns over (a, b, c) with a toggling fastest.
A = 0b10101010
B = 0b11001100
C = 0b11110000
FULL = 0b11111111


class TestPrimitives:
    def test_and(self, bld):
        builder, a, b, _ = bld
        assert tt(builder, builder.and_(a, b)) == A & B

    def test_or(self, bld):
        builder, a, b, _ = bld
        assert tt(builder, builder.or_(a, b)) == A | B

    def test_nand_nor(self, bld):
        builder, a, b, _ = bld
        assert tt(builder, builder.nand(a, b)) == (A & B) ^ FULL
        assert tt(builder, builder.nor(a, b)) == (A | B) ^ FULL

    def test_xor_xnor(self, bld):
        builder, a, b, _ = bld
        assert tt(builder, builder.xor(a, b)) == A ^ B
        assert tt(builder, builder.xnor(a, b)) == (A ^ B) ^ FULL

    def test_not(self, bld):
        builder, a, _, _ = bld
        assert tt(builder, builder.not_(a)) == A ^ FULL

    def test_maj(self, bld):
        builder, a, b, c = bld
        assert tt(builder, builder.maj(a, b, c)) == (A & B) | (A & C) | (B & C)

    def test_implies(self, bld):
        builder, a, b, _ = bld
        assert tt(builder, builder.implies(a, b)) == (A ^ FULL) | B

    def test_mux(self, bld):
        builder, a, b, c = bld
        # a selects: b when a=1 else c
        assert tt(builder, builder.mux(a, b, c)) == (A & B) | ((A ^ FULL) & C)

    def test_const(self, bld):
        builder, *_ = bld
        assert tt(builder, builder.const(0)) == 0
        assert tt(builder, builder.const(1)) == FULL
        with pytest.raises(MigError):
            builder.const(2)


class TestXorConstantFolding:
    def test_xor_with_const(self, bld):
        builder, a, _, _ = bld
        before = builder.mig.num_gates
        assert tt(builder, builder.xor(a, builder.const(0))) == A
        assert tt(builder, builder.xor(a, builder.const(1))) == A ^ FULL
        assert tt(builder, builder.xor(builder.const(1), a)) == A ^ FULL
        assert builder.mig.num_gates == before  # no gates created


class TestWideGates:
    def test_and_reduce(self, bld):
        builder, a, b, c = bld
        assert tt(builder, builder.and_reduce([a, b, c])) == A & B & C
        assert tt(builder, builder.and_reduce([])) == FULL
        assert tt(builder, builder.and_reduce([a])) == A

    def test_or_reduce(self, bld):
        builder, a, b, c = bld
        assert tt(builder, builder.or_reduce([a, b, c])) == A | B | C
        assert tt(builder, builder.or_reduce([])) == 0

    def test_xor_reduce(self, bld):
        builder, a, b, c = bld
        assert tt(builder, builder.xor_reduce([a, b, c])) == A ^ B ^ C


class TestAdders:
    @pytest.mark.parametrize("style", ["aoig", "maj"])
    def test_full_adder_function(self, style):
        builder = LogicBuilder(style=style)
        a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
        total, carry = builder.full_adder(a, b, c)
        assert tt(builder, total) == A ^ B ^ C
        assert tt(builder, carry) == (A & B) | (A & C) | (B & C)

    def test_maj_style_is_smaller(self):
        sizes = {}
        for style in ("aoig", "maj"):
            builder = LogicBuilder(style=style)
            a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
            builder.full_adder(a, b, c)
            sizes[style] = builder.mig.num_gates
        assert sizes["maj"] < sizes["aoig"]
        assert sizes["maj"] == 3

    def test_half_adder(self, bld):
        builder, a, b, _ = bld
        total, carry = builder.half_adder(a, b)
        assert tt(builder, total) == A ^ B
        assert tt(builder, carry) == A & B


class TestBuilderConfig:
    def test_unknown_style_rejected(self):
        with pytest.raises(MigError):
            LogicBuilder(style="nonsense")

    def test_inputs_and_outputs_helpers(self):
        builder = LogicBuilder()
        word = builder.inputs(3, "w")
        builder.outputs(word, "y")
        assert builder.mig.pi_names() == ["w0", "w1", "w2"]
        assert builder.mig.po_names() == ["y0", "y1", "y2"]
