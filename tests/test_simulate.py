"""Unit tests for repro.mig.simulate (bit-parallel simulation)."""

import pytest

from repro.errors import MigError
from repro.mig.graph import Mig
from repro.mig.signal import Signal
from repro.mig.simulate import (
    evaluate,
    output_tables,
    simulate,
    simulate_outputs,
    simulate_signals,
    truth_tables,
)


@pytest.fixture
def maj3():
    mig = Mig()
    a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
    mig.add_po(mig.add_maj(a, b, c), "m")
    return mig


class TestSinglePattern:
    @pytest.mark.parametrize(
        "a,b,c,expected",
        [(0, 0, 0, 0), (1, 0, 0, 0), (1, 1, 0, 1), (0, 1, 1, 1), (1, 1, 1, 1)],
    )
    def test_majority(self, maj3, a, b, c, expected):
        assert evaluate(maj3, {"a": a, "b": b, "c": c})["m"] == expected

    def test_positional_inputs(self, maj3):
        assert simulate(maj3, [1, 1, 0])["m"] == 1

    def test_positional_wrong_arity(self, maj3):
        with pytest.raises(MigError):
            simulate(maj3, [1, 1])

    def test_missing_input_rejected(self, maj3):
        with pytest.raises(MigError):
            simulate(maj3, {"a": 1, "b": 0})


class TestBitParallel:
    def test_packed_patterns(self, maj3):
        # patterns: (a,b,c) = (1,1,0), (0,1,1), (0,0,1), (1,0,0)
        out = simulate(maj3, {"a": 0b1001, "b": 0b0011, "c": 0b0110}, 4)
        assert out["m"] == 0b0011

    def test_mask_clips_extra_bits(self, maj3):
        out = simulate(maj3, {"a": 0xFF, "b": 0xFF, "c": 0xFF}, 2)
        assert out["m"] == 0b11

    def test_invalid_pattern_count(self, maj3):
        with pytest.raises(ValueError):
            simulate(maj3, {"a": 0, "b": 0, "c": 0}, 0)


class TestComplementHandling:
    def test_complemented_po(self):
        mig = Mig()
        a = mig.add_pi("a")
        mig.add_po(~a, "na")
        assert truth_tables(mig)["na"] == 0b01

    def test_complemented_children(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        # ⟨~a b 0⟩ = ~a AND b
        mig.add_po(mig.add_maj(~a, b, Signal.CONST0), "f")
        assert truth_tables(mig)["f"] == 0b0100

    def test_constant_pos(self):
        mig = Mig()
        mig.add_pi("a")
        mig.add_po(Signal.CONST0, "zero")
        mig.add_po(Signal.CONST1, "one")
        tables = truth_tables(mig)
        assert tables["zero"] == 0
        assert tables["one"] == 0b11


class TestTruthTables:
    def test_xor_table(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        o = mig.add_maj(a, b, Signal.CONST1)
        n = mig.add_maj(a, b, Signal.CONST0)
        mig.add_po(mig.add_maj(o, ~n, Signal.CONST0), "x")
        assert truth_tables(mig)["x"] == 0b0110

    def test_too_many_inputs_rejected(self):
        mig = Mig()
        for i in range(25):
            mig.add_pi(f"x{i}")
        mig.add_po(mig.pis()[0], "f")
        with pytest.raises(MigError):
            truth_tables(mig)


class TestDuplicateOutputNames:
    def duplicate_mig(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        g = mig.add_maj(a, b, Signal.CONST0)
        mig.add_po(g, "f")
        mig.add_po(~g, "f")  # same name, different function
        return mig

    def test_simulate_rejects_duplicate_names(self):
        """Regression: the name-keyed dict silently dropped the first of
        two same-named outputs."""
        with pytest.raises(MigError, match="duplicate primary output"):
            simulate(self.duplicate_mig(), {"a": 1, "b": 1})

    def test_truth_tables_reject_duplicate_names(self):
        with pytest.raises(MigError, match="duplicate primary output"):
            truth_tables(self.duplicate_mig())

    def test_simulate_outputs_by_index(self):
        values = simulate_outputs(self.duplicate_mig(), {"a": 1, "b": 1})
        assert values == [1, 0]

    def test_output_tables_by_index(self):
        tables = output_tables(self.duplicate_mig())
        assert tables[0] == 0b1000  # a AND b
        assert tables[1] == 0b0111

    def test_output_tables_match_truth_tables_without_duplicates(self, maj3):
        assert output_tables(maj3) == [truth_tables(maj3)["m"]]


class TestSimulateSignals:
    def test_internal_values(self, maj3):
        values = simulate_signals(maj3, {"a": 1, "b": 1, "c": 0})
        gate = next(iter(maj3.gates()))
        assert values[gate] == 1
        assert values[0] == 0  # constant node
