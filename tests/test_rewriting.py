"""Unit and integration tests for repro.core.rewriting (Algorithm 1)."""

import pytest

from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.cost import estimate_instructions
from repro.core.rewriting import (
    RewriteOptions,
    pass_inverter_cost_aware,
    rewrite_for_plim,
)
from repro.mig.analysis import complement_stats
from repro.mig.graph import Mig
from repro.mig.simulate import truth_tables

from conftest import random_mig


@pytest.mark.parametrize("seed", range(8))
def test_rewriting_preserves_function(seed):
    mig = random_mig(seed, num_pis=5, num_gates=30, num_pos=3)
    rewritten = rewrite_for_plim(mig)
    assert truth_tables(rewritten) == truth_tables(mig)


@pytest.mark.parametrize("seed", range(8))
def test_rewriting_never_grows(seed):
    mig = random_mig(seed, num_pis=5, num_gates=30, num_pos=3)
    baseline = mig.cleanup()[0].num_gates
    assert rewrite_for_plim(mig).num_gates <= baseline


@pytest.mark.parametrize("seed", range(8))
def test_rewriting_never_increases_estimated_cost(seed):
    mig = random_mig(seed, num_pis=5, num_gates=30, num_pos=3)
    baseline = estimate_instructions(mig.cleanup()[0])
    assert estimate_instructions(rewrite_for_plim(mig)) <= baseline


@pytest.mark.parametrize("seed", range(8))
def test_no_triple_complement_gates_remain(seed):
    """The final Ω.I(R→L) sweep eliminates the most costly case."""
    mig = random_mig(seed, num_pis=5, num_gates=30, invert_probability=0.6)
    rewritten = rewrite_for_plim(mig)
    assert complement_stats(rewritten).by_count[3] == 0


class TestOptions:
    def test_effort_zero_is_identity_modulo_order(self):
        mig = random_mig(1, num_pis=4, num_gates=20)
        rewritten = rewrite_for_plim(mig, RewriteOptions(effort=0))
        assert rewritten.num_gates == mig.cleanup()[0].num_gates
        assert truth_tables(rewritten) == truth_tables(mig)

    def test_size_rules_only(self):
        mig = random_mig(2, num_pis=5, num_gates=30, invert_probability=0.6)
        rewritten = rewrite_for_plim(
            mig, RewriteOptions(inverter_rules=False)
        )
        assert truth_tables(rewritten) == truth_tables(mig)

    def test_inverter_rules_only(self):
        mig = random_mig(3, num_pis=5, num_gates=30, invert_probability=0.6)
        rewritten = rewrite_for_plim(mig, RewriteOptions(size_rules=False))
        assert truth_tables(rewritten) == truth_tables(mig)
        assert complement_stats(rewritten).by_count[3] == 0

    def test_early_exit_matches_full_run(self):
        mig = random_mig(4, num_pis=5, num_gates=30)
        fast = rewrite_for_plim(mig, RewriteOptions(effort=8, early_exit=True))
        slow = rewrite_for_plim(mig, RewriteOptions(effort=8, early_exit=False))
        assert truth_tables(fast) == truth_tables(slow)
        assert fast.num_gates == slow.num_gates


class TestInverterCostAware:
    def test_flips_isolated_double_complement(self):
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        g = mig.add_maj(~a, ~b, c)
        mig.add_po(g, "f")
        result = pass_inverter_cost_aware(mig)
        gate = next(iter(result.gates()))
        inverted = sum(
            1 for s in result.children(gate) if s.inverted and not s.is_const
        )
        assert inverted == 1
        assert result.pos()[0].inverted  # pushed onto the output edge

    def test_unfavourable_flip_avoided(self):
        """Flipping is skipped when it would spoil two ideal parents.

        g = ⟨~a ~b c⟩ (cost 2) feeds two parents that each already have
        exactly one complemented child and would gain a second one (+2
        each): delta = -2 + 4 > 0 → keep.
        """
        mig = Mig()
        a, b, c, d = (mig.add_pi(x) for x in "abcd")
        g = mig.add_maj(~a, ~b, c)
        p1 = mig.add_maj(g, ~d, a)
        p2 = mig.add_maj(g, ~d, b)
        mig.add_po(p1, "f")
        mig.add_po(p2, "h")
        result = pass_inverter_cost_aware(mig)
        flipped_gates = [
            v
            for v in result.gates()
            if sum(1 for s in result.children(v) if s.inverted and not s.is_const) >= 2
        ]
        assert flipped_gates  # the double-complement gate survived

    def test_favourable_flip_taken_through_parent(self):
        """g feeds a parent without complements: flip makes parent ideal."""
        mig = Mig()
        a, b, c, d = (mig.add_pi(x) for x in "abcd")
        g = mig.add_maj(~a, ~b, c)
        p = mig.add_maj(g, d, a)
        mig.add_po(p, "f")
        result = pass_inverter_cost_aware(mig)
        for v in result.gates():
            inverted = sum(
                1 for s in result.children(v) if s.inverted and not s.is_const
            )
            assert inverted <= 1

    def test_po_cost_steers_decision(self):
        """With honest PO accounting, a flip that inverts the output of an
        otherwise-isolated gate is charged and can become unfavourable."""
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        mig.add_po(mig.add_maj(~a, ~b, c), "f")
        free = pass_inverter_cost_aware(mig, po_negation_cost=0)
        taxed = pass_inverter_cost_aware(mig, po_negation_cost=4)
        assert free.pos()[0].inverted
        assert not taxed.pos()[0].inverted


class TestEndToEndImprovement:
    def test_rewriting_improves_real_programs(self):
        """On complement-rich graphs, rewriting lowers actual #I."""
        total_before = total_after = 0
        compiler = PlimCompiler(CompilerOptions(fix_output_polarity=False))
        for seed in range(5):
            mig = random_mig(seed + 100, num_pis=6, num_gates=60, invert_probability=0.5)
            total_before += compiler.compile(mig).num_instructions
            total_after += compiler.compile(rewrite_for_plim(mig)).num_instructions
        assert total_after < total_before


class TestWorklistPhaseDeadNode:
    def test_rule_that_kills_node_stops_the_rule_chain(self):
        """Regression: a rule can fire and still return an empty affected
        set (replacement is a literal, ``v`` was read only by POs); the
        phase must not run the next rule on the tombstoned node."""
        from repro.core.rewriting import _worklist_phase
        from repro.mig.algebra import try_distributivity_rl, try_majority
        from repro.mig.graph import Mig

        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        trivial = mig.add_maj(a, a, b, simplify=False)  # Ω.M-collapsible
        mig.add_po(trivial, "f")
        mig.enable_inplace()
        # try_majority replaces the gate by ``a`` (affected = empty: the
        # only reader is a PO) and tombstones it; before the fix the phase
        # fell through to try_distributivity_rl, which raised MigError on
        # the dead node.
        _worklist_phase(mig, (try_majority, try_distributivity_rl))
        assert mig.num_gates == 0
        assert mig.pos()[0] == a
