"""Differential oracle: the array-fast Algorithm 2 vs the object engine.

``CompilerOptions(implementation=...)`` selects between two complete
implementations of the translation stage: ``"fast"`` (raw child
encodings, array-backed per-node state, lazy comments, flat program
columns) and ``"object"`` — the original Signal/dict/Operand path kept
verbatim as the oracle.  The contract is *byte identity*: for every
circuit and every option set, both engines must emit the same ``.plim``
text, comment for comment.  That is why the swap did NOT bump the
cache's ``ALGORITHM_REVISION`` (PR 6 precedent: bit-identical storage
swaps keep old entries valid) — and this suite is what keeps that
decision honest.

The full 18-circuit registry sweep (both allocator policies + the naïve
baseline) lives here; a hypothesis sweep over arbitrary graphs and
option sets is in ``tests/property/test_prop_compile_fast.py``.
"""

from __future__ import annotations

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, REGISTRY
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.mig.context import AnalysisContext

#: the option sets the acceptance gate pins: default scheduling under
#: both allocator recycling policies, plus the paper's naïve baseline
GATE_CONFIGS = {
    "fifo": CompilerOptions(allocator_policy="fifo"),
    "lifo": CompilerOptions(allocator_policy="lifo"),
    "naive": CompilerOptions.naive(),
}

#: extra corners beyond the gate: no complement caching, paper-style
#: candidate selection (level rule, no cleanup), a tight cell budget,
#: complemented outputs left in place, the lookahead rule
EXTRA_CONFIGS = {
    "nocache": CompilerOptions(complement_caching=False),
    "paper": CompilerOptions(level_rule=True, reorder="none", clean=False),
    "budget": CompilerOptions(max_work_cells=64),
    "paper_outputs": CompilerOptions(fix_output_polarity=False),
    "unblocking": CompilerOptions(unblocking_rule=True),
}


def _both_texts(mig, options: CompilerOptions) -> tuple[str, str]:
    from dataclasses import replace

    fast = PlimCompiler(replace(options, implementation="fast")).compile(mig)
    oracle = PlimCompiler(replace(options, implementation="object")).compile(mig)
    return fast.to_text(), oracle.to_text()


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
@pytest.mark.parametrize("config", sorted(GATE_CONFIGS))
def test_registry_circuit_is_byte_identical(name, config):
    mig = REGISTRY[name].build("ci")
    fast_text, oracle_text = _both_texts(mig, GATE_CONFIGS[config])
    assert fast_text == oracle_text


@pytest.mark.parametrize("config", sorted(EXTRA_CONFIGS))
def test_option_corners_are_byte_identical(config):
    for name in ("adder", "voter", "cavlc", "router"):
        mig = REGISTRY[name].build("ci")
        fast_text, oracle_text = _both_texts(mig, EXTRA_CONFIGS[config])
        assert fast_text == oracle_text, name


def test_shared_context_is_engine_neutral():
    """One AnalysisContext serves both engines without cross-talk."""
    mig = REGISTRY["voter"].build("ci")
    ctx = AnalysisContext.of(mig)
    fast = PlimCompiler(CompilerOptions(implementation="fast")).compile(mig, context=ctx)
    oracle = PlimCompiler(CompilerOptions(implementation="object")).compile(mig, context=ctx)
    fast_again = PlimCompiler(CompilerOptions(implementation="fast")).compile(mig, context=ctx)
    assert fast.to_text() == oracle.to_text() == fast_again.to_text()


def test_infeasible_budget_raises_identically():
    from repro.errors import CompilationError

    mig = REGISTRY["voter"].build("ci")
    errors = {}
    for impl in ("fast", "object"):
        with pytest.raises(CompilationError) as excinfo:
            PlimCompiler(
                CompilerOptions(implementation=impl, max_work_cells=1)
            ).compile(mig)
        errors[impl] = str(excinfo.value)
    assert errors["fast"] == errors["object"]


def test_implementation_is_validated():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        CompilerOptions(implementation="vectorized")


def test_duck_typed_graphs_fall_back_to_the_object_engine():
    """DictMig (no flat internals) compiles under the default options."""
    from repro.mig.graph import Mig
    from repro.mig.graph_dict import as_dict_mig

    mig = Mig(name="tiny")
    a, b, c = (mig.add_pi(n) for n in "abc")
    mig.add_po(mig.add_maj(a, ~b, c), "f")
    flat = PlimCompiler().compile(mig)
    ducked = PlimCompiler().compile(as_dict_mig(mig))
    assert ducked.to_text() == flat.to_text()
