"""Unit tests for repro.mig.signal."""

import pytest

from repro.mig.signal import Signal


class TestConstruction:
    def test_make_plain(self):
        s = Signal.make(5)
        assert s.node == 5
        assert not s.inverted

    def test_make_inverted(self):
        s = Signal.make(5, inverted=True)
        assert s.node == 5
        assert s.inverted

    def test_encoding_is_aiger_style(self):
        assert int(Signal.make(3, False)) == 6
        assert int(Signal.make(3, True)) == 7

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            Signal.make(-1)


class TestInversion:
    def test_invert_flips(self):
        s = Signal.make(2)
        assert (~s).inverted
        assert (~s).node == 2

    def test_double_invert_is_identity(self):
        s = Signal.make(7, True)
        assert ~~s == s

    def test_with_inversion(self):
        s = Signal.make(4, True)
        assert not s.with_inversion(False).inverted
        assert s.with_inversion(True) == s

    def test_xor_inversion(self):
        s = Signal.make(4)
        assert s.xor_inversion(True) == ~s
        assert s.xor_inversion(False) == s
        assert (~s).xor_inversion(True) == s


class TestConstants:
    def test_const0(self):
        assert Signal.CONST0.is_const
        assert Signal.CONST0.const_value == 0

    def test_const1(self):
        assert Signal.CONST1.is_const
        assert Signal.CONST1.const_value == 1

    def test_const1_is_inverted_const0(self):
        assert ~Signal.CONST0 == Signal.CONST1

    def test_non_const(self):
        s = Signal.make(3)
        assert not s.is_const
        with pytest.raises(ValueError):
            _ = s.const_value


class TestIntBehaviour:
    def test_hashable_and_equal(self):
        assert Signal.make(3) == Signal.make(3)
        assert len({Signal.make(3), Signal.make(3), Signal.make(4)}) == 2

    def test_sortable(self):
        signals = [Signal.make(2, True), Signal.make(1), Signal.make(2)]
        assert sorted(signals) == [Signal.make(1), Signal.make(2), Signal.make(2, True)]

    def test_repr(self):
        assert repr(Signal.make(3, True)) == "~s3"
        assert repr(Signal.make(3)) == "s3"
        assert repr(Signal.CONST0) == "Signal.CONST0"
        assert repr(Signal.CONST1) == "Signal.CONST1"
