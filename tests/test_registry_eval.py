"""Tests for the benchmark registry and the evaluation harness."""

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, SCALES, benchmark_info, build
from repro.errors import BenchmarkError
from repro.eval import ablations
from repro.eval.reporting import format_percent, format_table, improvement, to_csv
from repro.eval.table1 import (
    Table1Row,
    format_table1,
    measure_mig,
    paper_rows_table,
    run_benchmark,
    run_table1,
    table1_csv,
)


class TestRegistry:
    def test_all_18_benchmarks_present(self):
        assert len(BENCHMARK_NAMES) == 18
        assert set(BENCHMARK_NAMES) >= {
            "adder", "bar", "div", "log2", "max", "multiplier", "sin", "sqrt",
            "square", "cavlc", "ctrl", "dec", "i2c", "int2float", "mem_ctrl",
            "priority", "router", "voter",
        }

    def test_scales(self):
        assert SCALES == ("ci", "default", "paper")

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_ci_scale_builds(self, name):
        mig = build(name, "ci")
        assert mig.num_gates > 0
        assert mig.num_pis > 0
        assert mig.num_pos > 0

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_paper_scale_signature_matches_table1(self, name):
        info = benchmark_info(name)
        mig = build(name, "paper")
        assert mig.num_pis == info.paper.pi
        assert mig.num_pos == info.paper.po

    def test_unknown_name_rejected(self):
        with pytest.raises(BenchmarkError):
            build("nonsense")

    def test_unknown_scale_rejected(self):
        with pytest.raises(BenchmarkError):
            build("adder", "huge")

    def test_overrides(self):
        mig = build("adder", "ci", bits=6)
        assert mig.num_pis == 12

    def test_paper_rows_consistent(self):
        """Sanity: the transcribed Table 1 sums to the paper's Σ row."""
        total_i = sum(benchmark_info(n).paper.naive_i for n in BENCHMARK_NAMES)
        total_r = sum(benchmark_info(n).paper.naive_r for n in BENCHMARK_NAMES)
        assert total_i == 608655
        assert total_r == 22760
        total_fi = sum(benchmark_info(n).paper.full_i for n in BENCHMARK_NAMES)
        total_fr = sum(benchmark_info(n).paper.full_r for n in BENCHMARK_NAMES)
        assert total_fi == 487214
        assert total_fr == 8785

    def test_statuses(self):
        assert benchmark_info("adder").status == "exact"
        assert benchmark_info("sin").status == "family"
        assert benchmark_info("mem_ctrl").status == "surrogate"


class TestReporting:
    def test_improvement(self):
        assert improvement(100, 80) == pytest.approx(20.0)
        assert improvement(100, 120) == pytest.approx(-20.0)
        assert improvement(0, 5) == 0.0

    def test_format_percent(self):
        assert format_percent(19.95) == "19.95%"

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert lines[2].startswith("a ")
        assert lines[3].endswith("22")

    def test_to_csv(self):
        csv_text = to_csv(["x", "y"], [[1, 2]])
        assert csv_text.splitlines() == ["x,y", "1,2"]


class TestTable1Harness:
    def test_run_benchmark_row(self):
        row = run_benchmark("adder", "ci")
        assert row.name == "adder"
        assert row.naive_i > row.full_i
        assert row.naive_n >= row.rewr_n
        assert row.seconds > 0

    def test_improvement_properties(self):
        row = Table1Row(
            name="t", pi=1, po=1,
            naive_n=10, naive_i=100, naive_r=50,
            rewr_n=9, rewr_i=80, rewr_r=40,
            full_i=75, full_r=20,
        )
        assert row.rewr_i_impr == pytest.approx(20.0)
        assert row.full_r_impr == pytest.approx(60.0)

    def test_run_table1_subset(self):
        result = run_table1(names=["ctrl", "dec"], scale="ci")
        assert [r.name for r in result.rows] == ["ctrl", "dec"]
        total = result.total()
        assert total.naive_i == sum(r.naive_i for r in result.rows)

    def test_progress_callback(self):
        seen = []
        run_table1(names=["ctrl"], scale="ci", progress=lambda n, r: seen.append(n))
        assert seen == ["ctrl"]

    def test_format_contains_paper_totals(self):
        result = run_table1(names=["ctrl"], scale="ci")
        text = format_table1(result)
        assert "-61.40%" in text  # the paper's headline number
        assert "ctrl" in text
        assert "SUM" in text

    def test_sum_row_depth_is_max_not_sum(self):
        """Depth is not additive across circuits: the Σ row reports the
        deepest circuit, marked as such."""
        result = run_table1(names=["ctrl", "dec"], scale="ci")
        total = result.total()
        assert total.naive_d == max(r.naive_d for r in result.rows)
        assert total.rewr_d == max(r.rewr_d for r in result.rows)
        assert f"max {total.naive_d}" in format_table1(result)

    def test_csv_export(self):
        result = run_table1(names=["ctrl"], scale="ci")
        csv_text = table1_csv(result)
        assert csv_text.startswith("Benchmark,")
        assert "ctrl" in csv_text

    def test_shuffled_mode(self):
        plain = run_benchmark("dec", "ci")
        shuffled = run_benchmark("dec", "ci", shuffled=True)
        # Same functions → the smart compiler lands on similar results;
        # the naive baseline may differ in R.
        assert shuffled.full_i == plain.full_i

    def test_paper_rows_table(self):
        text = paper_rows_table(["adder"])
        assert "adder" in text
        assert "2844" in text

    def test_measure_mig_honest_accounting(self):
        from repro.eval.fig3 import fig3a_before

        row_paper = measure_mig(fig3a_before(), "f3", paper_accounting=True)
        row_honest = measure_mig(fig3a_before(), "f3", paper_accounting=False)
        # honest mode charges the complemented output the rewriter creates
        assert row_honest.full_i >= row_paper.full_i


class TestAblations:
    def test_effort_sweep_monotone_interface(self):
        mig = build("int2float", "ci")
        points = ablations.effort_sweep(mig, efforts=(0, 1, 2))
        assert [p.effort for p in points] == [0, 1, 2]
        assert points[0].instructions >= points[-1].instructions
        text = ablations.format_effort_sweep("int2float", points)
        assert "effort" in text

    def test_selection_ablation(self):
        mig = build("cavlc", "ci")
        points = ablations.selection_ablation(mig)
        configs = {p.config for p in points}
        assert "naive" in configs and "paper-rules" in configs
        orders = {p.order for p in points}
        assert orders == {"as-built", "shuffled"}
        text = ablations.format_selection_ablation("cavlc", points)
        assert "shuffled" in text

    def test_allocator_ablation(self):
        mig = build("int2float", "ci")
        points = ablations.allocator_ablation(mig)
        by_policy = {p.policy: p for p in points}
        assert set(by_policy) == {"fifo", "lifo", "fresh"}
        # FRESH never reuses → most cells, lowest peak wear.
        assert by_policy["fresh"].rrams >= by_policy["fifo"].rrams
        assert by_policy["fresh"].wear.max_writes <= by_policy["lifo"].wear.max_writes
        text = ablations.format_allocator_ablation("int2float", points)
        assert "fifo" in text

    def test_polarity_ablation(self):
        mig = build("priority", "ci")
        points = ablations.polarity_ablation(mig)
        by_mode = {p.accounting: p for p in points}
        assert by_mode["honest"].inverted_outputs == 0
        assert by_mode["honest"].instructions >= 0
        text = ablations.format_polarity_ablation("priority", points)
        assert "honest" in text

    def test_combined_report(self):
        report = ablations.run_benchmark_ablations("int2float", "ci")
        assert "Effort sweep" in report
        assert "Allocator" in report
