"""Unit tests for repro.mig.graph (the MIG data structure)."""

import pytest

from repro.errors import MigError
from repro.mig.graph import Mig
from repro.mig.signal import Signal
from repro.mig.simulate import truth_tables


@pytest.fixture
def abc_mig():
    mig = Mig(name="abc")
    a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
    return mig, a, b, c


class TestPis:
    def test_add_pi_returns_plain_signal(self, abc_mig):
        mig, a, _, _ = abc_mig
        assert not a.inverted
        assert mig.is_pi(a.node)

    def test_names(self, abc_mig):
        mig, a, b, c = abc_mig
        assert mig.pi_names() == ["a", "b", "c"]
        assert mig.pi_name(a.node) == "a"
        assert mig.pi_by_name("b") == b

    def test_duplicate_name_rejected(self, abc_mig):
        mig, *_ = abc_mig
        with pytest.raises(MigError):
            mig.add_pi("a")

    def test_unknown_name(self, abc_mig):
        mig, *_ = abc_mig
        with pytest.raises(MigError):
            mig.pi_by_name("zz")

    def test_auto_names(self):
        mig = Mig()
        mig.add_pi()
        mig.add_pi()
        assert mig.pi_names() == ["i1", "i2"]


class TestAddMaj:
    def test_creates_gate(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        assert mig.is_gate(f.node)
        assert mig.children(f.node) == (a, b, c)
        assert mig.num_gates == 1

    def test_child_order_preserved(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(c, a, b)
        assert mig.children(f.node) == (c, a, b)

    def test_strash_ignores_order(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        g = mig.add_maj(c, b, a)
        assert f == g
        assert mig.num_gates == 1

    def test_strash_respects_polarity(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        g = mig.add_maj(a, b, ~c)
        assert f != g
        assert mig.num_gates == 2

    def test_majority_rule_equal_children(self, abc_mig):
        mig, a, b, _ = abc_mig
        assert mig.add_maj(a, a, b) == a
        assert mig.add_maj(a, b, a) == a
        assert mig.add_maj(b, a, a) == a
        assert mig.num_gates == 0

    def test_majority_rule_complementary_children(self, abc_mig):
        mig, a, b, _ = abc_mig
        assert mig.add_maj(a, ~a, b) == b
        assert mig.add_maj(a, b, ~a) == b
        assert mig.add_maj(b, a, ~a) == b

    def test_constant_simplifications(self, abc_mig):
        mig, a, _, _ = abc_mig
        assert mig.add_maj(Signal.CONST0, Signal.CONST1, a) == a
        assert mig.add_maj(Signal.CONST0, Signal.CONST0, a) == Signal.CONST0

    def test_simplify_false_keeps_structure(self, abc_mig):
        mig, a, b, _ = abc_mig
        f = mig.add_maj(a, a, b, simplify=False)
        assert mig.is_gate(f.node)
        assert mig.children(f.node) == (a, a, b)

    def test_dangling_signal_rejected(self, abc_mig):
        mig, a, b, _ = abc_mig
        with pytest.raises(MigError):
            mig.add_maj(a, b, Signal.make(99))

    def test_non_signal_rejected(self, abc_mig):
        mig, a, b, _ = abc_mig
        with pytest.raises(MigError):
            mig.add_maj(a, b, 3)


class TestOutputs:
    def test_add_po(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        mig.add_po(f, "f")
        mig.add_po(~f, "g")
        assert mig.pos() == [f, ~f]
        assert mig.po_names() == ["f", "g"]

    def test_auto_name(self, abc_mig):
        mig, a, _, _ = abc_mig
        mig.add_po(a)
        assert mig.po_names() == ["o1"]


class TestTraversal:
    def test_gates_topological(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        g = mig.add_maj(f, a, b)
        order = list(mig.gates())
        assert order.index(f.node) < order.index(g.node)

    def test_len_counts_all_nodes(self, abc_mig):
        mig, a, b, c = abc_mig
        mig.add_maj(a, b, c)
        assert len(mig) == 1 + 3 + 1  # const + PIs + gate

    def test_node_kinds(self, abc_mig):
        mig, a, _, _ = abc_mig
        f = mig.add_maj(a, mig.add_pi("d"), Signal.CONST1)
        assert mig.is_const(0)
        assert mig.is_pi(a.node)
        assert mig.is_gate(f.node)
        assert not mig.is_gate(a.node)
        with pytest.raises(MigError):
            mig.children(a.node)


class TestRebuildCleanup:
    def test_cleanup_drops_dead_gates(self, abc_mig):
        mig, a, b, c = abc_mig
        live = mig.add_maj(a, b, c)
        mig.add_maj(a, b, ~c)  # dead
        mig.add_po(live, "f")
        clean, mapping = mig.cleanup()
        assert clean.num_gates == 1
        assert clean.num_pis == 3

    def test_cleanup_preserves_function(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, ~c)
        g = mig.add_maj(f, ~a, c)
        mig.add_po(~g, "f")
        clean, _ = mig.cleanup()
        assert truth_tables(mig) == truth_tables(clean)

    def test_rebuild_mapping(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        mig.add_po(f, "f")
        new, mapping = mig.rebuild()
        assert mapping[a.node] == new.pi_by_name("a")
        assert new.is_gate(mapping[f.node].node)

    def test_rebuild_gate_fn_phase_change(self, abc_mig):
        """gate_fn may return complemented signals; POs must stay correct."""
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        mig.add_po(f, "f")

        def gate_fn(new, _old, mapped):
            return ~new.add_maj(*(~s for s in mapped))

        new, _ = mig.rebuild(gate_fn)
        assert truth_tables(mig) == truth_tables(new)

    def test_clone_independent(self, abc_mig):
        mig, a, b, c = abc_mig
        mig.add_po(mig.add_maj(a, b, c), "f")
        twin = mig.clone()
        twin.add_pi("extra")
        assert mig.num_pis == 3
        assert twin.num_pis == 4


class TestMisc:
    def test_signal_name(self, abc_mig):
        mig, a, _, _ = abc_mig
        f = mig.add_maj(a, mig.pi_by_name("b"), Signal.CONST0)
        assert mig.signal_name(a) == "a"
        assert mig.signal_name(~a) == "~a"
        assert mig.signal_name(Signal.CONST1) == "1"
        assert mig.signal_name(f).startswith("n")

    def test_to_dot_contains_all_nodes(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, ~c)
        mig.add_po(f, "out")
        dot = mig.to_dot()
        assert "digraph" in dot
        assert "out" in dot
        assert "style=dashed" in dot  # the complemented edge

    def test_repr(self, abc_mig):
        mig, a, b, c = abc_mig
        mig.add_po(mig.add_maj(a, b, c), "f")
        assert "3 PIs" in repr(mig)
        assert "1 POs" in repr(mig)
