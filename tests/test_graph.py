"""Unit tests for repro.mig.graph (the MIG data structure)."""

import pytest

from repro.errors import MigError
from repro.mig.graph import Mig
from repro.mig.signal import Signal
from repro.mig.simulate import truth_tables


@pytest.fixture
def abc_mig():
    mig = Mig(name="abc")
    a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
    return mig, a, b, c


class TestPis:
    def test_add_pi_returns_plain_signal(self, abc_mig):
        mig, a, _, _ = abc_mig
        assert not a.inverted
        assert mig.is_pi(a.node)

    def test_names(self, abc_mig):
        mig, a, b, c = abc_mig
        assert mig.pi_names() == ["a", "b", "c"]
        assert mig.pi_name(a.node) == "a"
        assert mig.pi_by_name("b") == b

    def test_duplicate_name_rejected(self, abc_mig):
        mig, *_ = abc_mig
        with pytest.raises(MigError):
            mig.add_pi("a")

    def test_unknown_name(self, abc_mig):
        mig, *_ = abc_mig
        with pytest.raises(MigError):
            mig.pi_by_name("zz")

    def test_auto_names(self):
        mig = Mig()
        mig.add_pi()
        mig.add_pi()
        assert mig.pi_names() == ["i1", "i2"]


class TestAddMaj:
    def test_creates_gate(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        assert mig.is_gate(f.node)
        assert mig.children(f.node) == (a, b, c)
        assert mig.num_gates == 1

    def test_child_order_preserved(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(c, a, b)
        assert mig.children(f.node) == (c, a, b)

    def test_strash_ignores_order(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        g = mig.add_maj(c, b, a)
        assert f == g
        assert mig.num_gates == 1

    def test_strash_respects_polarity(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        g = mig.add_maj(a, b, ~c)
        assert f != g
        assert mig.num_gates == 2

    def test_majority_rule_equal_children(self, abc_mig):
        mig, a, b, _ = abc_mig
        assert mig.add_maj(a, a, b) == a
        assert mig.add_maj(a, b, a) == a
        assert mig.add_maj(b, a, a) == a
        assert mig.num_gates == 0

    def test_majority_rule_complementary_children(self, abc_mig):
        mig, a, b, _ = abc_mig
        assert mig.add_maj(a, ~a, b) == b
        assert mig.add_maj(a, b, ~a) == b
        assert mig.add_maj(b, a, ~a) == b

    def test_constant_simplifications(self, abc_mig):
        mig, a, _, _ = abc_mig
        assert mig.add_maj(Signal.CONST0, Signal.CONST1, a) == a
        assert mig.add_maj(Signal.CONST0, Signal.CONST0, a) == Signal.CONST0

    def test_simplify_false_keeps_structure(self, abc_mig):
        mig, a, b, _ = abc_mig
        f = mig.add_maj(a, a, b, simplify=False)
        assert mig.is_gate(f.node)
        assert mig.children(f.node) == (a, a, b)

    def test_dangling_signal_rejected(self, abc_mig):
        mig, a, b, _ = abc_mig
        with pytest.raises(MigError):
            mig.add_maj(a, b, Signal.make(99))

    def test_non_signal_rejected(self, abc_mig):
        mig, a, b, _ = abc_mig
        with pytest.raises(MigError):
            mig.add_maj(a, b, 3)


class TestOutputs:
    def test_add_po(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        mig.add_po(f, "f")
        mig.add_po(~f, "g")
        assert mig.pos() == [f, ~f]
        assert mig.po_names() == ["f", "g"]

    def test_auto_name(self, abc_mig):
        mig, a, _, _ = abc_mig
        mig.add_po(a)
        assert mig.po_names() == ["o1"]


class TestTraversal:
    def test_gates_topological(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        g = mig.add_maj(f, a, b)
        order = list(mig.gates())
        assert order.index(f.node) < order.index(g.node)

    def test_len_counts_all_nodes(self, abc_mig):
        mig, a, b, c = abc_mig
        mig.add_maj(a, b, c)
        assert len(mig) == 1 + 3 + 1  # const + PIs + gate

    def test_node_kinds(self, abc_mig):
        mig, a, _, _ = abc_mig
        f = mig.add_maj(a, mig.add_pi("d"), Signal.CONST1)
        assert mig.is_const(0)
        assert mig.is_pi(a.node)
        assert mig.is_gate(f.node)
        assert not mig.is_gate(a.node)
        with pytest.raises(MigError):
            mig.children(a.node)


class TestRebuildCleanup:
    def test_cleanup_drops_dead_gates(self, abc_mig):
        mig, a, b, c = abc_mig
        live = mig.add_maj(a, b, c)
        mig.add_maj(a, b, ~c)  # dead
        mig.add_po(live, "f")
        clean, mapping = mig.cleanup()
        assert clean.num_gates == 1
        assert clean.num_pis == 3

    def test_cleanup_preserves_function(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, ~c)
        g = mig.add_maj(f, ~a, c)
        mig.add_po(~g, "f")
        clean, _ = mig.cleanup()
        assert truth_tables(mig) == truth_tables(clean)

    def test_rebuild_mapping(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        mig.add_po(f, "f")
        new, mapping = mig.rebuild()
        assert mapping[a.node] == new.pi_by_name("a")
        assert new.is_gate(mapping[f.node].node)

    def test_rebuild_gate_fn_phase_change(self, abc_mig):
        """gate_fn may return complemented signals; POs must stay correct."""
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        mig.add_po(f, "f")

        def gate_fn(new, _old, mapped):
            return ~new.add_maj(*(~s for s in mapped))

        new, _ = mig.rebuild(gate_fn)
        assert truth_tables(mig) == truth_tables(new)

    def test_clone_independent(self, abc_mig):
        mig, a, b, c = abc_mig
        mig.add_po(mig.add_maj(a, b, c), "f")
        twin = mig.clone()
        twin.add_pi("extra")
        assert mig.num_pis == 3
        assert twin.num_pis == 4


class TestMisc:
    def test_signal_name(self, abc_mig):
        mig, a, _, _ = abc_mig
        f = mig.add_maj(a, mig.pi_by_name("b"), Signal.CONST0)
        assert mig.signal_name(a) == "a"
        assert mig.signal_name(~a) == "~a"
        assert mig.signal_name(Signal.CONST1) == "1"
        assert mig.signal_name(f).startswith("n")

    def test_to_dot_contains_all_nodes(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, ~c)
        mig.add_po(f, "out")
        dot = mig.to_dot()
        assert "digraph" in dot
        assert "out" in dot
        assert "style=dashed" in dot  # the complemented edge

    def test_repr(self, abc_mig):
        mig, a, b, c = abc_mig
        mig.add_po(mig.add_maj(a, b, c), "f")
        assert "3 PIs" in repr(mig)
        assert "1 POs" in repr(mig)


class TestNodeCap:
    """The 2^23-node strash-key cap fails cleanly, not mid-append."""

    def test_cap_raises_clear_error_naming_the_limit(self, monkeypatch):
        import repro.mig.graph as graph_mod

        monkeypatch.setattr(graph_mod, "_MAX_NODE", 4)
        mig = Mig()
        a, b, c = (mig.add_pi(x) for x in "abc")
        mig.add_maj(a, b, c)  # index 4: the last admissible slot
        with pytest.raises(MigError) as excinfo:
            mig.add_maj(a, b, ~c)
        message = str(excinfo.value)
        assert "node limit exceeded" in message
        assert "2^23" in message  # names the real limit, not just a number
        assert "rebuild()" in message  # and a recovery

    def test_failed_append_leaves_graph_consistent(self, monkeypatch):
        import repro.mig.graph as graph_mod

        monkeypatch.setattr(graph_mod, "_MAX_NODE", 4)
        mig = Mig()
        a, b, c = (mig.add_pi(x) for x in "abc")
        g = mig.add_maj(a, b, c)
        before = (mig.num_pis, mig.num_gates, len(mig._kind))
        with pytest.raises(MigError):
            mig.add_maj(a, b, ~c)
        with pytest.raises(MigError):
            mig.add_pi("d")
        assert (mig.num_pis, mig.num_gates, len(mig._kind)) == before
        assert len(mig._ca) == len(mig._cb) == len(mig._cc) == len(mig._kind)
        # the graph still works: strash hits don't allocate, so they're fine
        assert mig.add_maj(a, b, c) == g


class TestInplace:
    """The mutable core: replace_node, refcounts, tombstones, topo order."""

    def _chain(self):
        mig = Mig(name="chain")
        a, b, c, d = (mig.add_pi(x) for x in "abcd")
        g1 = mig.add_maj(a, b, c)
        g2 = mig.add_maj(g1, c, d)
        g3 = mig.add_maj(g2, a, d)
        mig.add_po(g3, "f")
        mig.enable_inplace()
        return mig, (a, b, c, d), (g1, g2, g3)

    def test_enable_inplace_builds_refs_and_parents(self):
        mig, (a, b, c, d), (g1, g2, g3) = self._chain()
        assert mig.fanout_of(g1.node) == 1
        assert mig.fanout_of(g3.node) == 1  # the PO edge
        assert mig.parents_of_node(g1.node) == (g2.node,)
        assert set(mig.parents_of_node(c.node)) == {g1.node, g2.node}
        assert [po for po in mig.po_edges_of(g3.node)] == [g3]

    def test_replace_node_redirects_parents_and_pos(self):
        mig, (a, b, c, d), (g1, g2, g3) = self._chain()
        before = truth_tables(mig)
        # replace g3 by an equivalent (here: itself rebuilt) — no-op
        assert mig.replace_node(g3.node, mig.add_maj(g2, a, d)) == set()
        # replace g2 by ~(an equivalent of its complement) — same function
        flipped = mig.add_maj(~g1, ~c, ~d)
        affected = mig.replace_node(g2.node, ~flipped)
        assert g3.node in affected
        assert g2.node not in list(mig.gates())
        assert truth_tables(mig) == before

    def test_replace_node_cascades_strash_merge(self):
        mig = Mig()
        a, b, c, d = (mig.add_pi(x) for x in "abcd")
        g1 = mig.add_maj(a, b, c)
        g2 = mig.add_maj(a, b, d)
        p1 = mig.add_maj(g1, d, a)
        p2 = mig.add_maj(g2, d, a)
        mig.add_po(p1, "f")
        mig.add_po(p2, "h")
        mig.enable_inplace()
        gates_before = mig.num_gates
        # replacing g2 by g1 makes p2's triple identical to p1's -> merge
        affected = mig.replace_node(g2.node, g1)
        assert p2.node in affected
        assert mig.num_gates == gates_before - 2
        assert mig.pos()[0] == mig.pos()[1]

    def test_replace_node_collapses_on_simplification(self):
        mig = Mig()
        a, b, c = (mig.add_pi(x) for x in "abc")
        g1 = mig.add_maj(a, b, c)
        p = mig.add_maj(g1, ~a, b)
        mig.add_po(p, "f")
        mig.enable_inplace()
        # replacing g1 by ~a gives p = <~a ~a b> = ~a: p collapses too
        mig.replace_node(g1.node, ~a)
        assert mig.num_gates == 0
        assert mig.pos()[0] == ~a

    def test_dead_cone_is_tombstoned_and_counts_update(self):
        mig, (a, b, c, d), (g1, g2, g3) = self._chain()
        mig.replace_node(g3.node, d)
        # the whole cone was only read through g3 -> everything dies
        assert mig.num_gates == 0
        assert list(mig.gates()) == []
        assert not mig.is_pi(g1.node)
        assert not mig.is_gate(g1.node)
        assert len(mig) == 8  # slots stay allocated until cleanup
        clean, _ = mig.rebuild()
        assert len(clean) == 5

    def test_self_replacement_guards(self):
        mig, (a, *_), (g1, g2, g3) = self._chain()
        assert mig.replace_node(g2.node, g2) == set()
        with pytest.raises(MigError):
            mig.replace_node(g2.node, ~g2)
        with pytest.raises(MigError):
            mig.replace_node(a.node, g2)  # PIs cannot be replaced

    def test_requires_enable_inplace(self):
        mig = Mig()
        a, b, c = (mig.add_pi(x) for x in "abc")
        g = mig.add_maj(a, b, c)
        mig.add_po(g, "f")
        with pytest.raises(MigError, match="enable_inplace"):
            mig.replace_node(g.node, a)
        with pytest.raises(MigError, match="enable_inplace"):
            mig.fanout_of(g.node)

    def test_find_maj_never_creates(self):
        mig, (a, b, c, d), (g1, g2, g3) = self._chain()
        size = len(mig)
        assert mig.find_maj(a, b, c) == g1  # strash hit
        assert mig.find_maj(a, ~a, d) == d  # simplification
        assert mig.find_maj(a, b, d) is None  # would be a fresh gate
        assert len(mig) == size

    def test_inplace_signature_tracks_edits(self):
        from repro.mig.analysis import complement_stats

        mig, (a, b, c, d), (g1, g2, g3) = self._chain()
        num, hist, _ = mig.inplace_signature()
        assert num == mig.num_gates
        assert hist == complement_stats(mig).by_count
        flipped = mig.add_maj(~g1, ~c, ~d)
        mig.replace_node(g2.node, ~flipped)
        num, hist, _ = mig.inplace_signature()
        assert num == mig.num_gates
        assert hist == complement_stats(mig).by_count

    def test_topo_gates_children_first_after_edits(self):
        mig, (a, b, c, d), (g1, g2, g3) = self._chain()
        flipped = mig.add_maj(~g1, ~c, ~d)
        mig.replace_node(g2.node, ~flipped)
        seen = set()
        for v in mig.topo_gates():
            for child in mig.children(v):
                assert not mig.is_gate(child.node) or child.node in seen
            seen.add(v)
        assert seen == set(mig.gates())

    def test_reorder_children_is_order_only(self):
        mig, (a, b, c, d), (g1, g2, g3) = self._chain()
        before = truth_tables(mig)
        edits = mig.edit_count
        mig.reorder_children(g1.node, (c, a, b))
        assert mig.children(g1.node) == (c, a, b)
        assert mig.edit_count == edits + 1
        assert truth_tables(mig) == before
        with pytest.raises(MigError, match="permutation"):
            mig.reorder_children(g1.node, (c, a, d))

    def test_collect_unused_sweeps_speculation(self):
        mig, (a, b, c, d), (g1, g2, g3) = self._chain()
        speculative = mig.add_maj(a, b, d)  # created, never referenced
        assert mig.is_gate(speculative.node)
        assert mig.collect_unused() == 1
        assert not mig.is_gate(speculative.node)

    def test_cascade_cannot_redirect_to_retired_node(self):
        """Regression: a queued merge target must survive sibling cascades.

        Replacing A by S rewires P1 to X's triple (queueing a merge of P1
        into X) while the P2 branch collapses and drops X's last real
        reference — X must stay alive until the queued merge lands.
        """
        mig = Mig()
        s, d, e = (mig.add_pi(x) for x in "sde")
        x_gate = mig.add_maj(s, d, e)
        a_gate = mig.add_maj(s, e, ~d)
        p1 = mig.add_maj(a_gate, d, e)
        p2 = mig.add_maj(a_gate, x_gate, s)
        mig.add_po(p1, "f")
        mig.add_po(p2, "g")
        mig.enable_inplace()
        # assert the shape the scenario needs: X is only read through P2
        assert mig.fanout_of(x_gate.node) == 1
        mig.replace_node(a_gate.node, s)
        for po in mig.pos():
            assert po.is_const or mig.is_pi(po.node) or mig.is_gate(po.node)
        for v in mig.gates():
            for child in mig.children(v):
                assert child.is_const or mig.is_pi(child.node) or mig.is_gate(child.node)
        truth_tables(mig)  # must not crash on dangling references

    def test_clone_preserves_tombstones_and_pi_lookup(self):
        mig, (a, b, c, d), (g1, g2, g3) = self._chain()
        mig.replace_node(g2.node, g1)
        clone = mig.clone()
        assert clone.num_gates == mig.num_gates
        assert not clone.is_inplace  # in-place state is not carried over
        assert clone.pi_name(b.node) == "b"
        assert truth_tables(clone) == truth_tables(mig)
