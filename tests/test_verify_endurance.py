"""Unit tests for repro.plim.verify and repro.plim.endurance."""

import pytest

from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.errors import VerificationError
from repro.mig.graph import Mig
from repro.mig.signal import Signal
from repro.plim.endurance import report_from_counts, wear_report, work_cell_wear
from repro.plim.isa import Instruction, ONE, Operand, ZERO
from repro.plim.machine import PlimMachine
from repro.plim.program import Program
from repro.plim.verify import verify_program

from conftest import random_mig


def compile_default(mig):
    return PlimCompiler(CompilerOptions()).compile(mig)


class TestVerifyProgram:
    def test_correct_program_passes_exhaustive(self):
        mig = random_mig(1, num_pis=4, num_gates=12)
        result = verify_program(mig, compile_default(mig))
        assert result.ok
        assert result.mode == "exhaustive"
        assert result.patterns_checked == 16

    def test_correct_program_passes_random(self):
        mig = random_mig(2, num_pis=16, num_gates=40)
        result = verify_program(mig, compile_default(mig), exhaustive_limit=8)
        assert result.ok
        assert result.mode == "random"

    def test_detects_corruption(self):
        mig = random_mig(3, num_pis=4, num_gates=12)
        program = compile_default(mig)
        # Corrupt: flip the polarity flag of the first output.
        name, loc = next(iter(program.output_cells.items()))
        program.set_output(name, loc.cell, not loc.inverted)
        result = verify_program(mig, program)
        assert not result.ok
        assert result.failing_output == name
        assert result.counterexample is not None

    def test_detects_instruction_corruption(self):
        # a XOR b — never constant, so forcing the output cell must fail.
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        o = mig.add_maj(a, b, Signal.CONST1)
        n = mig.add_maj(a, b, Signal.CONST0)
        mig.add_po(mig.add_maj(o, ~n, Signal.CONST0), "f")
        program = compile_default(mig)
        loc = program.output_cells["f"]
        program.append(Instruction(ZERO, ONE, loc.cell))  # force the cell to 0
        assert not verify_program(mig, program).ok

    def test_raise_on_mismatch(self):
        mig = random_mig(5, num_pis=4, num_gates=12)
        program = compile_default(mig)
        name, loc = next(iter(program.output_cells.items()))
        program.set_output(name, loc.cell, not loc.inverted)
        with pytest.raises(VerificationError):
            verify_program(mig, program, raise_on_mismatch=True)

    def test_missing_io_rejected(self):
        mig = random_mig(6, num_pis=3, num_gates=8)
        program = compile_default(mig)
        del program.input_cells[mig.pi_names()[0]]
        with pytest.raises(VerificationError):
            verify_program(mig, program)

    def test_constant_output(self):
        mig = Mig()
        mig.add_pi("a")
        mig.add_po(Signal.CONST1, "one")
        assert verify_program(mig, compile_default(mig)).ok


class TestEndurance:
    def test_report_from_counts(self):
        report = report_from_counts([2, 2, 2, 2])
        assert report.max_writes == 2
        assert report.mean_writes == 2
        assert report.gini == pytest.approx(0.0)
        assert report.cells_written == 4

    def test_gini_concentrated(self):
        even = report_from_counts([5, 5, 5, 5])
        skewed = report_from_counts([20, 0, 0, 0])
        assert skewed.gini > even.gini
        assert skewed.gini > 0.7

    def test_empty(self):
        report = report_from_counts([])
        assert report.total_writes == 0
        assert report.gini == 0.0

    def test_wear_report_from_machine(self):
        machine = PlimMachine(4)
        machine.set_lim(True)
        for _ in range(3):
            machine.execute(Instruction(ONE, ZERO, 1))
        report = wear_report(machine)
        assert report.total_writes == 3
        assert report.max_writes == 3
        restricted = wear_report(machine, cells=[0, 2])
        assert restricted.total_writes == 0

    def test_work_cell_wear_for_program(self):
        mig = random_mig(7, num_pis=4, num_gates=14)
        program = compile_default(mig)
        machine = PlimMachine.for_program(program)
        machine.run_program(program, {n: 1 for n in mig.pi_names()})
        report = work_cell_wear(machine, program)
        assert report.num_cells == program.num_rrams
        assert report.total_writes > 0

    def test_fifo_spreads_wear_vs_lifo(self):
        """The paper's endurance argument: FIFO reuse lowers peak wear."""
        mig = random_mig(8, num_pis=6, num_gates=60, num_pos=2)
        peaks = {}
        for policy in ("fifo", "lifo"):
            program = PlimCompiler(
                CompilerOptions(allocator_policy=policy)
            ).compile(mig)
            machine = PlimMachine.for_program(program)
            machine.run_program(program, {n: 0 for n in mig.pi_names()})
            peaks[policy] = work_cell_wear(machine, program).max_writes
        assert peaks["fifo"] <= peaks["lifo"]

    def test_str_rendering(self):
        report = report_from_counts([1, 2, 3])
        assert "max=3" in str(report)


class TestEnduranceHandScheduled:
    """EnduranceReport fields on tiny hand-written programs.

    Every count is derived by hand from the RM3 semantics
    (``Z ← ⟨A, ¬B, Z⟩``), so these pin the exact wear accounting the
    allocator ablation and the ``plim`` cost model report.
    """

    def _force_program(self) -> Program:
        """Three writes to one work cell: 0, then 1, then 1 again."""
        program = Program(name="force")
        program.append(Instruction(ZERO, ONE, 2))   # ⟨0, ¬1, Z⟩ = 0
        program.append(Instruction(ONE, ZERO, 2))   # ⟨1, ¬0, Z⟩ = 1
        program.append(Instruction(ONE, ZERO, 2))   # stays 1
        program.register_work_cell(2)
        program.set_output("f", 2)
        return program

    def test_write_and_flip_counts_by_hand(self):
        program = self._force_program()
        machine = PlimMachine.for_program(program)
        outputs = machine.run_program(program, {})
        assert outputs == {"f": 1}
        # three programming pulses, but only the 0→1 transition flipped
        # (cells power up at 0, so the first forced 0 is not a flip)
        assert machine.write_counts[2] == 3
        assert machine.flip_counts[2] == 1

    def test_report_fields_on_single_work_cell(self):
        program = self._force_program()
        machine = PlimMachine.for_program(program)
        machine.run_program(program, {})
        report = work_cell_wear(machine, program)
        assert report.num_cells == 1
        assert report.cells_written == 1
        assert report.total_writes == 3
        assert report.max_writes == 3
        assert report.mean_writes == pytest.approx(3.0)
        assert report.stddev_writes == pytest.approx(0.0)
        assert report.gini == pytest.approx(0.0)  # one cell: trivially even

    def test_unbalanced_work_cells(self):
        program = Program(name="skew")
        for _ in range(4):
            program.append(Instruction(ONE, ZERO, 0))  # hot cell: 4 pulses
        # warm cell: 1 pulse; cell 2 is only ever *read*, never written
        program.append(Instruction(Operand.cell(2), ZERO, 1))
        for cell in (0, 1, 2):
            program.register_work_cell(cell)
        program.set_output("f", 0)
        machine = PlimMachine.for_program(program)
        machine.run_program(program, {})
        report = work_cell_wear(machine, program)
        assert report.num_cells == 3
        assert report.cells_written == 2  # the untouched cell doesn't count
        assert report.total_writes == 5
        assert report.max_writes == 4
        assert report.mean_writes == pytest.approx(5 / 3)
        assert report.gini > 0.0

    def test_work_cell_wear_excludes_input_cells(self):
        """Input loads are pulses too, but #R wear only covers work cells."""
        program = Program(input_cells={"a": 0}, name="io")
        program.append(Instruction(Operand.cell(0), ZERO, 1))  # Z ← a | Z
        program.register_work_cell(1)
        program.set_output("f", 1)
        machine = PlimMachine.for_program(program)
        machine.run_program(program, {"a": 1})
        assert machine.write_counts[0] == 1  # the RAM-mode input load
        report = work_cell_wear(machine, program)
        assert report.num_cells == 1
        assert report.total_writes == 1  # work cell only

    def test_width1_flip_caveat(self):
        """Packed widths overstate flips: one flip per write at any width.

        At width 4 a single write whose value differs in just one packed
        universe still counts one flip — ``flip_counts`` is per *write
        that changed anything*, not per flipped universe.  Pulse counts
        (``write_counts``) are width-invariant.  This is why the module
        docstring says to run ``width=1`` when flip counts matter.
        """
        program = Program(input_cells={"a": 0}, name="packed")
        program.append(Instruction(Operand.cell(0), ZERO, 1))  # Z ← a | Z
        program.register_work_cell(1)
        program.set_output("f", 1)

        packed = PlimMachine.for_program(program, width=4)
        packed.run_program(program, {"a": 0b0001})  # flips 1 of 4 universes
        assert packed.write_counts[1] == 1
        assert packed.flip_counts[1] == 1  # "any universe flipped", not 1/4

        serial_flips = 0
        for bit in (1, 0, 0, 0):  # the same four universes, one at a time
            machine = PlimMachine.for_program(program, width=1)
            machine.run_program(program, {"a": bit})
            serial_flips += machine.flip_counts[1]
        assert serial_flips == 1  # width=1 ground truth agrees here…
        # …but a packed all-universes pattern still counts a single flip
        packed_all = PlimMachine.for_program(program, width=4)
        packed_all.run_program(program, {"a": 0b1111})
        assert packed_all.flip_counts[1] == 1  # 4 universes flipped, 1 count
