"""Unit tests for repro.plim.verify and repro.plim.endurance."""

import pytest

from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.errors import VerificationError
from repro.mig.graph import Mig
from repro.mig.signal import Signal
from repro.plim.endurance import report_from_counts, wear_report, work_cell_wear
from repro.plim.isa import Instruction, ONE, ZERO
from repro.plim.machine import PlimMachine
from repro.plim.verify import verify_program

from conftest import random_mig


def compile_default(mig):
    return PlimCompiler(CompilerOptions()).compile(mig)


class TestVerifyProgram:
    def test_correct_program_passes_exhaustive(self):
        mig = random_mig(1, num_pis=4, num_gates=12)
        result = verify_program(mig, compile_default(mig))
        assert result.ok
        assert result.mode == "exhaustive"
        assert result.patterns_checked == 16

    def test_correct_program_passes_random(self):
        mig = random_mig(2, num_pis=16, num_gates=40)
        result = verify_program(mig, compile_default(mig), exhaustive_limit=8)
        assert result.ok
        assert result.mode == "random"

    def test_detects_corruption(self):
        mig = random_mig(3, num_pis=4, num_gates=12)
        program = compile_default(mig)
        # Corrupt: flip the polarity flag of the first output.
        name, loc = next(iter(program.output_cells.items()))
        program.set_output(name, loc.cell, not loc.inverted)
        result = verify_program(mig, program)
        assert not result.ok
        assert result.failing_output == name
        assert result.counterexample is not None

    def test_detects_instruction_corruption(self):
        # a XOR b — never constant, so forcing the output cell must fail.
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        o = mig.add_maj(a, b, Signal.CONST1)
        n = mig.add_maj(a, b, Signal.CONST0)
        mig.add_po(mig.add_maj(o, ~n, Signal.CONST0), "f")
        program = compile_default(mig)
        loc = program.output_cells["f"]
        program.append(Instruction(ZERO, ONE, loc.cell))  # force the cell to 0
        assert not verify_program(mig, program).ok

    def test_raise_on_mismatch(self):
        mig = random_mig(5, num_pis=4, num_gates=12)
        program = compile_default(mig)
        name, loc = next(iter(program.output_cells.items()))
        program.set_output(name, loc.cell, not loc.inverted)
        with pytest.raises(VerificationError):
            verify_program(mig, program, raise_on_mismatch=True)

    def test_missing_io_rejected(self):
        mig = random_mig(6, num_pis=3, num_gates=8)
        program = compile_default(mig)
        del program.input_cells[mig.pi_names()[0]]
        with pytest.raises(VerificationError):
            verify_program(mig, program)

    def test_constant_output(self):
        mig = Mig()
        mig.add_pi("a")
        mig.add_po(Signal.CONST1, "one")
        assert verify_program(mig, compile_default(mig)).ok


class TestEndurance:
    def test_report_from_counts(self):
        report = report_from_counts([2, 2, 2, 2])
        assert report.max_writes == 2
        assert report.mean_writes == 2
        assert report.gini == pytest.approx(0.0)
        assert report.cells_written == 4

    def test_gini_concentrated(self):
        even = report_from_counts([5, 5, 5, 5])
        skewed = report_from_counts([20, 0, 0, 0])
        assert skewed.gini > even.gini
        assert skewed.gini > 0.7

    def test_empty(self):
        report = report_from_counts([])
        assert report.total_writes == 0
        assert report.gini == 0.0

    def test_wear_report_from_machine(self):
        machine = PlimMachine(4)
        machine.set_lim(True)
        for _ in range(3):
            machine.execute(Instruction(ONE, ZERO, 1))
        report = wear_report(machine)
        assert report.total_writes == 3
        assert report.max_writes == 3
        restricted = wear_report(machine, cells=[0, 2])
        assert restricted.total_writes == 0

    def test_work_cell_wear_for_program(self):
        mig = random_mig(7, num_pis=4, num_gates=14)
        program = compile_default(mig)
        machine = PlimMachine.for_program(program)
        machine.run_program(program, {n: 1 for n in mig.pi_names()})
        report = work_cell_wear(machine, program)
        assert report.num_cells == program.num_rrams
        assert report.total_writes > 0

    def test_fifo_spreads_wear_vs_lifo(self):
        """The paper's endurance argument: FIFO reuse lowers peak wear."""
        mig = random_mig(8, num_pis=6, num_gates=60, num_pos=2)
        peaks = {}
        for policy in ("fifo", "lifo"):
            program = PlimCompiler(
                CompilerOptions(allocator_policy=policy)
            ).compile(mig)
            machine = PlimMachine.for_program(program)
            machine.run_program(program, {n: 0 for n in mig.pi_names()})
            peaks[policy] = work_cell_wear(machine, program).max_writes
        assert peaks["fifo"] <= peaks["lifo"]

    def test_str_rendering(self):
        report = report_from_counts([1, 2, 3])
        assert "max=3" in str(report)
