"""Unit tests for repro.plim.program."""

import pytest

from repro.errors import ParseError
from repro.plim.isa import Instruction, ONE, Operand, ZERO
from repro.plim.program import OutputLocation, Program


@pytest.fixture
def small_program():
    program = Program(input_cells={"a": 0, "b": 1}, name="demo")
    program.register_work_cell(2)
    program.append(Instruction(ZERO, ONE, 2, "X1 <- 0"))
    program.append(Instruction(Operand.cell(0), ZERO, 2, "X1 <- a"))
    program.set_output("f", 2)
    return program


class TestBasics:
    def test_counts(self, small_program):
        assert small_program.num_instructions == 2
        assert small_program.num_rrams == 1
        assert len(small_program) == 2

    def test_num_cells(self, small_program):
        assert small_program.num_cells == 3

    def test_iteration(self, small_program):
        assert [i.z for i in small_program] == [2, 2]

    def test_work_cell_dedup(self, small_program):
        small_program.register_work_cell(2)
        small_program.register_work_cell(5)
        assert small_program.work_cells == [2, 5]

    def test_output_location(self, small_program):
        small_program.set_output("g", 2, inverted=True)
        assert small_program.output_cells["g"] == OutputLocation(2, True)

    def test_repr(self, small_program):
        assert "2 instructions" in repr(small_program)


class TestListing:
    def test_paper_style(self, small_program):
        listing = small_program.listing()
        lines = listing.splitlines()
        assert lines[0].startswith("01: 0, 1, @X1")
        assert "X1 <- 0" in lines[0]
        assert "a, 0, @X1" in lines[1]  # input cell rendered by name

    def test_without_comments(self, small_program):
        assert "X1 <- 0" not in small_program.listing(with_comments=False)

    def test_cell_namer(self, small_program):
        namer = small_program.cell_namer()
        assert namer(0) == "a"
        assert namer(2) == "@X1"
        assert namer(99) == "@99"


class TestSerialization:
    def test_roundtrip(self, small_program):
        text = small_program.to_text()
        back = Program.from_text(text)
        assert back.name == "demo"
        assert back.input_cells == {"a": 0, "b": 1}
        assert back.work_cells == [2]
        assert back.output_cells == {"f": OutputLocation(2, False)}
        assert [str(i) for i in back] == [str(i) for i in small_program]

    def test_roundtrip_preserves_comments(self, small_program):
        back = Program.from_text(small_program.to_text())
        assert back.instructions[0].comment == "X1 <- 0"

    def test_inverted_output_roundtrip(self):
        program = Program(name="t")
        program.set_output("f", 3, inverted=True)
        back = Program.from_text(program.to_text())
        assert back.output_cells["f"].inverted

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            Program.from_text("0 1 @2\n")  # no header
        with pytest.raises(ParseError):
            Program.from_text(".plim t\n0 1\n")  # malformed instruction
        with pytest.raises(ParseError):
            Program.from_text(".plim t\n0 1 2\n")  # destination missing @
        with pytest.raises(ParseError):
            Program.from_text(".plim t\nx 1 @2\n")  # bad operand
        with pytest.raises(ParseError):
            Program.from_text("")  # empty
