"""Pluggable cost models and the synthesize→schedule→re-synthesize loop.

The ISSUE 8 tentpole contracts:

* the four built-in models (:class:`NodeCount`, :class:`Depth`,
  :class:`StaticPlim`, :class:`CompiledPlim`) measure real quantities —
  #N/#D from the graph, the §4.2.2 estimate, and Algorithm 2's actual
  #I/#R/cycles/wear — and expose orderable objective keys;
* ``RewriteOptions(objective=NodeCount())`` is **bit-identical** to the
  legacy ``objective="size"`` string on every registry circuit (same
  fingerprint — the model collapses onto the dedicated engine), and
  alias/instance forms share one synthesis-cache identity;
* :func:`compile_cost_loop` never ships a program worse than its own
  baseline, stays function-preserving, respects ``max_iterations``, and
  strictly beats the one-shot #N-optimal rewrite on at least one
  registry circuit (the paper-gap observation the loop exists to close);
* :class:`CompiledPlim`'s per-fingerprint memo is a private cache — it
  never crosses pickle boundaries and never leaks into the model's
  ``repr``/equality (its cache identity).
"""

import pickle

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, build
from repro.core.cache import SynthesisCache
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.cost import (
    COST_MODELS,
    CompiledPlim,
    CostReport,
    Depth,
    NodeCount,
    StaticPlim,
    estimate,
    resolve_cost_model,
)
from repro.core.rewriting import (
    RewriteOptions,
    compile_cost_loop,
    rewrite_for_plim,
)
from repro.errors import ReproError
from repro.mig.analysis import depth as mig_depth
from repro.mig.equivalence import equivalent
from repro.mig.graph import Mig

from conftest import random_mig


def fa_mig():
    """A small full-adder-ish MIG with mixed complement structure."""
    m = Mig()
    a, b, c = (m.add_pi(n) for n in "abc")
    carry = m.add_maj(a, b, c)
    s = m.add_maj(~carry, m.add_maj(a, b, ~c), c)
    m.add_po(carry, "cout")
    m.add_po(~s, "sum")
    return m


class TestModelMeasurements:
    def test_node_count_reports_graph_metrics(self):
        m = fa_mig()
        report = NodeCount().measure(m)
        assert report.model == "size"
        assert report["num_gates"] == m.num_gates
        assert report["depth"] == mig_depth(m)
        assert report.objective == (m.num_gates, mig_depth(m))
        assert report.wear is None

    def test_depth_orders_by_depth_first(self):
        m = fa_mig()
        report = Depth().measure(m)
        assert report.objective == (mig_depth(m), m.num_gates)

    def test_static_plim_matches_the_422_estimator(self):
        m = fa_mig()
        report = StaticPlim().measure(m)
        est = estimate(m)
        assert report["instructions"] == est.instructions
        assert report["extra_rrams"] == est.extra_rrams
        assert report.objective[0] == est.instructions

    def test_static_plim_charges_po_negations_when_asked(self):
        m = fa_mig()  # one complemented PO
        free = StaticPlim().measure(m)
        honest = StaticPlim(po_negation_cost=2).measure(m)
        assert honest["instructions"] == free["instructions"] + 2

    def test_compiled_plim_measures_the_real_program(self):
        m = fa_mig()
        model = CompiledPlim()
        report = model.measure(m)
        program = PlimCompiler(model.compiler_options()).compile(fa_mig())
        assert report["num_instructions"] == program.num_instructions
        assert report["num_rrams"] == program.num_rrams
        assert report["cycles"] == 3 * program.num_instructions
        assert report.wear is not None
        assert report["max_writes"] == report.wear.max_writes
        assert report["total_writes"] == report.wear.total_writes
        assert report.objective[:2] == (
            program.num_instructions, program.num_rrams,
        )

    def test_compiled_plim_honest_accounting_costs_more(self):
        m = fa_mig()  # the complemented PO needs a fix-up when charged
        paper = CompiledPlim().measure(m)
        honest = CompiledPlim(paper_accounting=False).measure(m)
        assert honest["num_instructions"] > paper["num_instructions"]

    def test_compiled_plim_memoizes_per_fingerprint(self):
        m = fa_mig()
        model = CompiledPlim()
        first = model.measure(m)
        assert model.measure(m) is first  # second call is the memo hit
        assert model.measure(fa_mig()) is first  # same structure, same entry

    def test_report_mapping_interface(self):
        report = CostReport(model="x", metrics={"num_gates": 3}, objective=(3,))
        assert report["num_gates"] == 3
        assert report.get("num_gates") == 3
        assert report.get("missing", 42) == 42
        with pytest.raises(KeyError):
            report["missing"]


class TestResolution:
    @pytest.mark.parametrize("alias", sorted(COST_MODELS))
    def test_aliases_resolve(self, alias):
        model = resolve_cost_model(alias)
        assert model.name == alias
        assert type(model) is COST_MODELS[alias]

    def test_instances_pass_through(self):
        model = CompiledPlim(allocator_policy="lifo")
        assert resolve_cost_model(model) is model

    def test_unknown_alias_rejected(self):
        with pytest.raises(ReproError, match="unknown cost model"):
            resolve_cost_model("area")

    def test_balanced_is_a_strategy_not_a_model(self):
        # "balanced" interleaves two engines; it measures nothing, so it
        # stays a rewriting strategy and is rejected here
        with pytest.raises(ReproError, match="unknown cost model"):
            resolve_cost_model("balanced")

    def test_unknown_rewrite_objective_rejected(self):
        with pytest.raises(ReproError, match="unknown rewrite objective"):
            rewrite_for_plim(fa_mig(), RewriteOptions(objective="fastest"))


class TestLegacyEquivalence:
    """Model objectives collapse onto the dedicated engines bit-identically
    — the ISSUE 8 no-regression acceptance bar."""

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_node_count_is_bit_identical_to_size(self, name):
        mig = build(name, "ci")
        legacy = rewrite_for_plim(mig, RewriteOptions(objective="size"))
        model = rewrite_for_plim(mig, RewriteOptions(objective=NodeCount()))
        assert model.fingerprint() == legacy.fingerprint(), name

    def test_depth_model_is_bit_identical_to_depth(self):
        for name in ("ctrl", "int2float", "priority"):
            mig = build(name, "ci")
            legacy = rewrite_for_plim(mig, RewriteOptions(objective="depth"))
            model = rewrite_for_plim(mig, RewriteOptions(objective=Depth()))
            assert model.fingerprint() == legacy.fingerprint(), name

    def test_size_alias_shares_cache_entries(self, tmp_path):
        """``objective=NodeCount()`` canonicalizes to the "size" string
        before the cache key is computed, so the two forms hit each
        other's entries."""
        mig = build("ctrl", "ci")
        writer = SynthesisCache(tmp_path)
        rewrite_for_plim(mig, RewriteOptions(objective="size"), cache=writer)
        assert writer.stats.stores == 1
        reader = SynthesisCache(tmp_path)
        hit = rewrite_for_plim(
            mig, RewriteOptions(objective=NodeCount()), cache=reader
        )
        assert reader.stats.hits == 1 and reader.stats.stores == 0
        assert hit.fingerprint() == rewrite_for_plim(mig).fingerprint()

    def test_plim_alias_shares_cache_identity_with_instance(self, tmp_path):
        """The "plim" alias resolves to a default :class:`CompiledPlim`
        stored back into the options, so alias and instance runs share
        every cached inner rewrite."""
        mig = build("ctrl", "ci")
        writer = SynthesisCache(tmp_path)
        rewrite_for_plim(mig, RewriteOptions(effort=2, objective="plim"), cache=writer)
        assert writer.stats.stores >= 1
        reader = SynthesisCache(tmp_path)
        rewrite_for_plim(
            mig, RewriteOptions(effort=2, objective=CompiledPlim()), cache=reader
        )
        assert reader.stats.hits >= 1 and reader.stats.stores == 0

    def test_non_default_model_params_do_not_collide(self, tmp_path):
        """A differently-parameterized model is a different cache identity
        — its guided run stores fresh inner-rewrite entries instead of
        reusing the default model's."""
        mig = build("ctrl", "ci")
        rewrite_for_plim(
            mig, RewriteOptions(effort=2, objective="plim"),
            cache=SynthesisCache(tmp_path),
        )
        probe = SynthesisCache(tmp_path)
        rewrite_for_plim(
            mig,
            RewriteOptions(effort=2, objective=CompiledPlim(allocator_policy="lifo")),
            cache=probe,
        )
        assert probe.stats.stores >= 1


class TestGuidedRewriting:
    def test_guided_never_worse_than_input(self):
        for seed in range(4):
            mig = random_mig(seed=seed, num_pis=4, num_gates=20)
            baseline = StaticPlim().measure(mig).objective
            best = rewrite_for_plim(
                mig, RewriteOptions(effort=2, objective="static-plim")
            )
            assert StaticPlim().measure(best).objective <= baseline
            assert equivalent(mig, best).equivalent

    def test_guided_preserves_function_on_registry(self):
        for name in ("ctrl", "int2float", "priority"):
            mig = build(name, "ci")
            best = rewrite_for_plim(mig, RewriteOptions(effort=2, objective="plim"))
            assert equivalent(mig, best).equivalent, name


class TestCostLoop:
    def test_loop_never_worse_than_baseline(self):
        for name in ("ctrl", "priority", "router"):
            result = compile_cost_loop(build(name, "ci"), effort=2)
            assert result.model == "plim"
            assert (
                result.final["num_instructions"]
                <= result.baseline["num_instructions"]
            ), name
            assert result.num_instructions == result.program.num_instructions

    @pytest.mark.parametrize("name", ["priority", "router"])
    def test_loop_strictly_beats_the_size_rewrite(self, name):
        """The headline acceptance bar: circuits where the #N-optimal MIG
        is *not* #I-optimal, and the closed loop strictly improves #I
        (priority 31→30, router 1013→949 at ci scale)."""
        mig = build(name, "ci")
        size_optimal = rewrite_for_plim(mig, RewriteOptions(effort=4))
        size_i = (
            PlimCompiler(CompilerOptions(fix_output_polarity=False))
            .compile(size_optimal)
            .num_instructions
        )
        result = compile_cost_loop(mig, effort=4)
        assert result.num_instructions < size_i, name
        assert equivalent(mig, result.mig).equivalent

    def test_loop_is_function_preserving(self):
        for seed in range(3):
            mig = random_mig(seed=seed, num_pis=4, num_gates=18)
            result = compile_cost_loop(mig, effort=2)
            assert equivalent(mig, result.mig).equivalent

    def test_max_iterations_bounds_the_rounds(self):
        result = compile_cost_loop(build("router", "ci"), effort=4, max_iterations=1)
        assert result.iterations == 1
        assert max(s.iteration for s in result.steps) == 1

    def test_converged_loop_ends_on_a_rejecting_round(self):
        result = compile_cost_loop(build("ctrl", "ci"), effort=2, max_iterations=8)
        assert result.converged
        assert result.iterations < 8
        last_round = [s for s in result.steps if s.iteration == result.iterations]
        assert last_round and not any(s.accepted for s in last_round)

    def test_steps_start_with_the_input_baseline(self):
        result = compile_cost_loop(build("ctrl", "ci"), effort=2)
        first = result.steps[0]
        assert (first.iteration, first.variant, first.accepted) == (0, "input", True)
        assert first.metrics == result.baseline

    def test_static_objective_reports_the_estimate(self):
        result = compile_cost_loop(build("ctrl", "ci"), objective="static-plim")
        assert result.model == "static-plim"
        assert result.final["instructions"] == estimate(result.mig).instructions

    def test_compiler_options_override_the_final_compile(self):
        honest = compile_cost_loop(
            build("ctrl", "ci"),
            effort=2,
            compiler_options=CompilerOptions(fix_output_polarity=True),
        )
        paper = compile_cost_loop(build("ctrl", "ci"), effort=2)
        assert honest.num_instructions >= paper.num_instructions

    def test_loop_accepts_model_instances(self):
        result = compile_cost_loop(
            build("ctrl", "ci"), effort=2,
            objective=CompiledPlim(allocator_policy="lifo"),
        )
        assert result.model == "plim"
        assert result.program.num_instructions == result.num_instructions


class TestPickling:
    def test_compiled_plim_pickle_drops_the_memo(self):
        model = CompiledPlim()
        model.measure(fa_mig())
        assert model._memo
        clone = pickle.loads(pickle.dumps(model))
        assert clone == model  # identity excludes the memo
        assert clone._memo == {}
        # the clone re-measures identically
        assert (
            clone.measure(fa_mig()).metrics == model.measure(fa_mig()).metrics
        )

    def test_memo_is_not_cache_identity(self):
        warm = CompiledPlim()
        warm.measure(fa_mig())
        cold = CompiledPlim()
        assert warm == cold
        assert repr(warm) == repr(cold)

    def test_all_models_pickle_round_trip(self):
        for model in (NodeCount(), Depth(), StaticPlim(po_negation_cost=2),
                      CompiledPlim(paper_accounting=False)):
            assert pickle.loads(pickle.dumps(model)) == model
