"""Tests for RRAM-budgeted compilation (the paper's future-work item).

``CompilerOptions(max_work_cells=k)`` caps the paper's #R metric: under
pressure the compiler evicts cached complements (recomputing them later if
needed) instead of allocating fresh cells.
"""

import pytest

from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.errors import CompilationError
from repro.mig.graph import Mig
from repro.plim.verify import verify_program

from conftest import random_mig


def compile_with_budget(mig, budget):
    options = CompilerOptions(max_work_cells=budget, fix_output_polarity=False)
    return PlimCompiler(options).compile(mig)


def cache_heavy_mig():
    """Gates with no complements and no constants — maximal cache traffic."""
    mig = Mig()
    pis = [mig.add_pi(f"x{i}") for i in range(6)]
    layer = pis
    width = len(pis)
    for _ in range(3):
        layer = [
            mig.add_maj(layer[i], layer[(i + 1) % width], layer[(i + 2) % width])
            for i in range(width)
        ]
    for i, s in enumerate(layer):
        mig.add_po(s, f"f{i}")
    return mig


class TestBudgetedCompilation:
    def test_unlimited_matches_default(self):
        mig = cache_heavy_mig()
        free = PlimCompiler(CompilerOptions(fix_output_polarity=False)).compile(mig)
        capped = compile_with_budget(mig, free.num_rrams)
        assert capped.num_rrams <= free.num_rrams
        assert verify_program(mig, capped).ok

    def test_budget_respected_and_correct(self):
        mig = cache_heavy_mig()
        free = PlimCompiler(CompilerOptions(fix_output_polarity=False)).compile(mig)
        for budget in range(free.num_rrams, 0, -1):
            try:
                program = compile_with_budget(mig, budget)
            except CompilationError:
                # Once infeasible, every tighter budget must also fail.
                for tighter in range(budget, 0, -1):
                    with pytest.raises(CompilationError):
                        compile_with_budget(mig, tighter)
                break
            assert program.num_rrams <= budget
            assert verify_program(mig, program, raise_on_mismatch=True).ok

    def test_tight_budget_costs_instructions(self):
        """Evicted complements must be recomputed: fewer cells, more RM3s."""
        mig = cache_heavy_mig()
        free = PlimCompiler(CompilerOptions(fix_output_polarity=False)).compile(mig)
        # Find the tightest feasible budget.
        tightest = None
        for budget in range(free.num_rrams, 0, -1):
            try:
                tightest = compile_with_budget(mig, budget)
            except CompilationError:
                break
        assert tightest is not None
        assert tightest.num_rrams < free.num_rrams
        assert tightest.num_instructions >= free.num_instructions

    def test_infeasible_budget_raises(self):
        mig = cache_heavy_mig()
        with pytest.raises(CompilationError):
            compile_with_budget(mig, 1)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_migs_under_pressure(self, seed):
        mig = random_mig(seed + 200, num_pis=5, num_gates=30, num_pos=2)
        free = PlimCompiler(CompilerOptions(fix_output_polarity=False)).compile(mig)
        budget = max(2, free.num_rrams - 2)
        try:
            program = compile_with_budget(mig, budget)
        except CompilationError:
            return  # genuinely infeasible — acceptable
        assert program.num_rrams <= budget
        assert verify_program(mig, program, raise_on_mismatch=True).ok
