"""Differential oracle: array-backed ``Mig`` vs the reference ``DictMig``.

The struct-of-arrays core must be a pure storage refactor: for the same
graph, the same pipeline has to produce bit-identical Table 1 numbers on
both cores — every node count, instruction count, RRAM count and depth,
for every registry circuit, on both rewrite engines.  That identity is
what lets ``ALGORITHM_REVISION`` stay untouched across the swap: cached
rewriting results computed on the dict core remain valid verbatim.

``as_dict_mig`` rebuilds an array-core graph node-for-node (same ids,
same child order, same PO order) inside the dict core, so even
order-sensitive passes — the worklist engine's id-ordered sweeps — see
exactly the same graph on both sides.
"""

import dataclasses

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, build
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.eval.table1 import measure_mig
from repro.mig.equivalence import equivalent
from repro.mig.graph_dict import DictMig, as_dict_mig


def _comparable(row):
    """A Table 1 row minus its wall-clock field."""
    return dataclasses.replace(row, seconds=0.0)


class TestStructuralCopy:
    @pytest.mark.parametrize("name", ["ctrl", "dec", "int2float", "voter"])
    def test_copy_is_identical(self, name):
        mig = build(name, "ci")
        copy = as_dict_mig(mig)
        assert type(copy) is DictMig
        assert copy.fingerprint() == mig.fingerprint()
        assert len(copy) == len(mig)
        assert [int(s) for s in copy.pos()] == [int(s) for s in mig.pos()]
        assert equivalent(copy, mig)


class TestTable1BitIdentical:
    """The acceptance gate: identical Table 1 rows at ci scale, all circuits."""

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_worklist_rows_match(self, name):
        mig = build(name, "ci")
        array_row = measure_mig(mig, name)
        dict_row = measure_mig(as_dict_mig(mig), name)
        assert _comparable(array_row) == _comparable(dict_row)

    @pytest.mark.parametrize("name", ["ctrl", "i2c", "router", "square"])
    def test_rebuild_rows_match(self, name):
        mig = build(name, "ci")
        array_row = measure_mig(mig, name, engine="rebuild")
        dict_row = measure_mig(as_dict_mig(mig), name, engine="rebuild")
        assert _comparable(array_row) == _comparable(dict_row)


class TestRewriteFingerprints:
    """Stronger than row counts: the rewritten graphs are the same graph.

    Creation-order-invariant fingerprints matching on both cores proves
    the rewriting output (and hence every cache entry keyed off it) is
    unchanged by the storage swap — the recorded justification for not
    bumping ``ALGORITHM_REVISION``.
    """

    @pytest.mark.parametrize("engine", ["worklist", "rebuild"])
    @pytest.mark.parametrize("name", ["cavlc", "max", "priority", "sin"])
    def test_rewritten_fingerprints_match(self, name, engine):
        mig = build(name, "ci")
        options = RewriteOptions(engine=engine)
        from_array = rewrite_for_plim(mig, options)
        from_dict = rewrite_for_plim(as_dict_mig(mig), options)
        assert from_array.fingerprint() == from_dict.fingerprint()
        assert equivalent(from_array, mig)
