"""Tests for the end-to-end pipeline and the Fig. 3 paper regressions."""

import pytest

from repro.core.compiler import CompilerOptions
from repro.core.pipeline import compile_mig
from repro.core.rewriting import RewriteOptions
from repro.eval import fig3
from repro.mig.equivalence import equivalent
from repro.mig.simulate import truth_tables
from repro.plim.verify import verify_program

from conftest import random_mig


class TestPipeline:
    @pytest.mark.parametrize("seed", range(4))
    def test_default_pipeline_correct(self, seed):
        mig = random_mig(seed + 60, num_pis=5, num_gates=30)
        result = compile_mig(mig)
        assert verify_program(mig, result.program, raise_on_mismatch=True).ok

    def test_no_rewrite(self):
        mig = random_mig(1, num_pis=4, num_gates=20)
        result = compile_mig(mig, rewrite=False)
        assert result.rewrite_options is None
        assert result.compiled_mig is mig
        assert verify_program(mig, result.program).ok

    def test_effort_forwarded(self):
        mig = random_mig(2, num_pis=4, num_gates=20)
        result = compile_mig(mig, effort=2)
        assert result.rewrite_options.effort == 2

    def test_po_cost_follows_accounting(self):
        mig = random_mig(3, num_pis=4, num_gates=20)
        honest = compile_mig(mig)
        paper = compile_mig(
            mig, compiler_options=CompilerOptions(fix_output_polarity=False)
        )
        assert honest.rewrite_options.po_negation_cost == 2
        assert paper.rewrite_options.po_negation_cost == 0

    def test_explicit_rewrite_options_win(self):
        mig = random_mig(4, num_pis=4, num_gates=20)
        opts = RewriteOptions(effort=1, po_negation_cost=9)
        result = compile_mig(mig, effort=5, rewrite_options=opts)
        assert result.rewrite_options is opts

    def test_result_metrics(self):
        mig = random_mig(5, num_pis=4, num_gates=20)
        result = compile_mig(mig)
        assert result.num_instructions == result.program.num_instructions
        assert result.num_rrams == result.program.num_rrams
        assert result.num_gates == result.compiled_mig.num_gates
        assert "I=" in repr(result)


class TestFig3Structures:
    def test_fig3a_pair_equivalent(self):
        assert equivalent(fig3.fig3a_before(), fig3.fig3a_after())

    def test_fig3b_structure(self):
        mig = fig3.fig3b()
        assert mig.num_pis == 3
        assert mig.num_gates == 6
        assert mig.num_pos == 1

    def test_fig3b_no_dead_gates(self):
        mig = fig3.fig3b()
        assert mig.cleanup()[0].num_gates == 6


class TestFig3PaperCounts:
    """The headline regressions: exact counts from the paper's listings."""

    def test_fig3a_before_naive(self):
        program = fig3.naive_compiler().compile(fig3.fig3a_before())
        assert program.num_instructions == fig3.FIG3A_BEFORE_INSTRUCTIONS
        assert program.num_rrams == fig3.FIG3A_BEFORE_RRAMS

    def test_fig3a_after_smart(self):
        program = fig3.smart_compiler().compile(fig3.fig3a_after())
        assert program.num_instructions == fig3.FIG3A_AFTER_INSTRUCTIONS
        assert program.num_rrams == fig3.FIG3A_AFTER_RRAMS

    def test_fig3a_rewriting_reaches_optimum(self):
        """Algorithm 1 itself finds the 'after' form from 'before'."""
        result = compile_mig(
            fig3.fig3a_before(),
            compiler_options=CompilerOptions(fix_output_polarity=False, reorder="none"),
        )
        assert result.num_instructions == fig3.FIG3A_AFTER_INSTRUCTIONS
        assert result.num_rrams == fig3.FIG3A_AFTER_RRAMS

    def test_fig3b_naive_counts(self):
        program = fig3.naive_compiler().compile(fig3.fig3b())
        assert program.num_instructions == fig3.FIG3B_NAIVE_INSTRUCTIONS
        assert program.num_rrams == fig3.FIG3B_NAIVE_RRAMS_FIFO

    def test_fig3b_smart_counts(self):
        program = fig3.smart_compiler().compile(fig3.fig3b())
        assert program.num_instructions == fig3.FIG3B_SMART_INSTRUCTIONS
        assert program.num_rrams == fig3.FIG3B_SMART_RRAMS

    def test_all_fig3_programs_verify(self):
        report = fig3.run_fig3()
        for mig_fn, program in [
            (fig3.fig3a_before, report.fig3a_before_naive),
            (fig3.fig3a_after, report.fig3a_after_smart),
            (fig3.fig3b, report.fig3b_naive),
            (fig3.fig3b, report.fig3b_smart),
        ]:
            assert verify_program(mig_fn(), program, raise_on_mismatch=True).ok

    def test_summary_mentions_paper_numbers(self):
        assert "(paper: 15, 4)" in fig3.run_fig3().summary()
