"""Pareto-sweep benches (A3): the (#N, #D) frontier on the Table 1 suite.

Measures :func:`repro.core.pareto.pareto_sweep` throughput on
representative circuits (pytest-benchmark mode) and — run directly
(``python benchmarks/bench_pareto.py [--scale ci]``) — sweeps **every**
Table 1 registry circuit, asserting the acceptance bar per circuit:

* every frontier point equivalence-checks against the input,
* no returned point is dominated by another,
* every depth-budgeted point respects its budget (``depth <= budget``),
* both unconstrained anchors (``objective="size"`` / ``"depth"``) were
  swept (their extremes-match cross-check lives in ``tests/test_pareto.py``).

The sweep is written to ``BENCH_pareto.json`` next to this file, so
successive PRs have a machine-readable frontier trajectory.

The standalone mode additionally measures the *incremental* sweep: every
circuit is swept four ways — cold (per-budget restarts, the pre-warm
baseline, no cache), warm (warm-started budget chains, no cache — the
pure chaining effect), warm+populate (the same warm sweep writing a disk
cache, so its time includes fingerprinting/serialization overhead), and
warm+cached (a repeat against the populated cache).  Per circuit it
asserts the warm frontier equals-or-dominates the cold frontier
point-for-point and that caching never changes the frontier; overall it
asserts the warm+cached sweep is >= 3x faster than the cold sweep.  The
timings land in ``BENCH_pareto_incremental.json``.
"""

try:
    import pytest
except ModuleNotFoundError:  # standalone snapshot mode needs no pytest
    pytest = None

from repro.circuits.registry import BENCHMARK_NAMES, benchmark_info
from repro.core.pareto import ParetoFront, pareto_sweep

REPRESENTATIVE = ["i2c", "router", "int2float"]


def check_front(front: ParetoFront) -> None:
    """The acceptance bar shared by the pytest and snapshot modes.

    (The stronger cross-check — frontier extremes vs *independently*
    recomputed ``objective="size"``/``"depth"`` rewrites — lives in
    ``tests/test_pareto.py``; repeating those rewrites here would double
    the cost of every snapshot run for a structurally guaranteed
    property, since the sweep always includes both anchors.)
    """
    assert front.points, "empty frontier"
    candidates = (*front.points, *front.dominated)
    for p in candidates:
        assert p.equivalence in ("exhaustive", "random")
        if p.budget is not None:
            assert p.depth <= p.budget, (p.label, p.depth, p.budget)
    for p in front.points:
        for q in front.points:
            assert not p.dominates(q), (p, q)
    assert {"size", "depth"} <= {p.label for p in candidates}


if pytest is not None:

    @pytest.mark.parametrize("name", REPRESENTATIVE)
    def test_pareto_sweep_throughput(benchmark, name, scale):
        mig = benchmark_info(name).build(scale)
        front = benchmark(pareto_sweep, mig, workers=1, max_points=4)
        benchmark.extra_info.update(
            {
                "scale": scale,
                "front_points": len(front.points),
                "dominated": len(front.dominated),
                "depth_span": [front.depth_point.depth, front.size_point.depth],
                "gates_span": [front.size_point.num_gates, front.depth_point.num_gates],
            }
        )
        check_front(front)


# ----------------------------------------------------------------------
# standalone mode: machine-readable frontier trajectory (BENCH_pareto.json)
# ----------------------------------------------------------------------


def front_equals_or_dominates(warm: ParetoFront, cold: ParetoFront) -> list:
    """Cold frontier points no warm point equals-or-dominates (ideally [])."""
    return [
        c.to_dict()
        for c in cold.points
        if not any(
            w.num_gates <= c.num_gates and w.depth <= c.depth for w in warm.points
        )
    ]


def main(argv=None) -> int:
    """Sweep every registry circuit and write BENCH_pareto.json plus the
    cold/warm/cached comparison BENCH_pareto_incremental.json."""
    import tempfile
    import time
    from pathlib import Path

    import _common

    parser = _common.snapshot_parser(main.__doc__, __file__, "BENCH_pareto.json")
    parser.add_argument(
        "--workers", type=int, default=1, help="process pool per sweep (default 1)"
    )
    parser.add_argument(
        "--max-points", type=int, default=8, help="intermediate budget cap per circuit"
    )
    parser.add_argument(
        "--incremental-output",
        default=str(Path(__file__).with_name("BENCH_pareto_incremental.json")),
        help="cold/warm/cached comparison snapshot "
        "(default: BENCH_pareto_incremental.json next to this file)",
    )
    parser.add_argument(
        "--min-cached-speedup",
        type=float,
        default=3.0,
        help="acceptance floor for total cold / warm+cached wall time "
        "(default 3.0; 0 disables the assertion)",
    )
    args = parser.parse_args(argv)

    circuits = []
    incremental = []
    totals = {"cold": 0.0, "warm": 0.0, "populate": 0.0, "cached": 0.0}
    wall_start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="plim-cache-") as cache_dir:
        for name in BENCHMARK_NAMES:
            sweep = dict(
                workers=args.workers, max_points=args.max_points
            )
            start = time.perf_counter()
            cold = pareto_sweep((name, args.scale), warm_start=False, **sweep)
            cold_s = time.perf_counter() - start
            # the pure warm-chaining effect: no cache involved
            start = time.perf_counter()
            warm = pareto_sweep((name, args.scale), **sweep)
            warm_s = time.perf_counter() - start
            # same sweep writing the disk cache (adds fingerprint +
            # serialization overhead), then the repeat that hits it
            start = time.perf_counter()
            populated = pareto_sweep(
                (name, args.scale), cache_dir=cache_dir, **sweep
            )
            populate_s = time.perf_counter() - start
            start = time.perf_counter()
            cached = pareto_sweep((name, args.scale), cache_dir=cache_dir, **sweep)
            cached_s = time.perf_counter() - start

            check_front(cold)
            check_front(warm)
            missed = front_equals_or_dominates(warm, cold)
            assert not missed, (
                f"{name}: warm frontier fails to equal-or-dominate cold "
                f"points {missed}"
            )
            strip = lambda p: {**p.to_dict(), "seconds": None}
            assert [strip(p) for p in populated.points] == [
                strip(p) for p in warm.points
            ], f"{name}: caching changed the frontier"
            assert [p.to_dict() for p in cached.points] == [
                p.to_dict() for p in populated.points
            ], f"{name}: cache hit changed the frontier"

            totals["cold"] += cold_s
            totals["warm"] += warm_s
            totals["populate"] += populate_s
            totals["cached"] += cached_s
            candidates = (*warm.points, *warm.dominated)
            incremental.append(
                {
                    "circuit": name,
                    "cold_seconds": round(cold_s, 6),
                    "warm_seconds": round(warm_s, 6),
                    "populate_seconds": round(populate_s, 6),
                    "cached_seconds": round(cached_s, 6),
                    "warm_speedup": round(cold_s / warm_s, 2) if warm_s else None,
                    "cached_speedup": (
                        round(cold_s / cached_s, 2) if cached_s else None
                    ),
                    "warm_points": sum(
                        1 for p in candidates if p.source == "warm"
                    ),
                    "cold_fallbacks": sum(
                        1 for p in candidates if p.source == "cold-fallback"
                    ),
                    "front_points": len(warm.points),
                }
            )
            row = warm.to_dict()
            row["front_points"] = len(warm.points)
            circuits.append(row)
            span = " -> ".join(
                f"(N={p.num_gates}, D={p.depth})" for p in warm.points
            )
            print(
                f"{name}: {len(warm.points)} non-dominated point(s) {span} "
                f"[cold {cold_s:.2f}s, warm {warm_s:.2f}s, "
                f"cached {cached_s:.2f}s]"
            )
    wall = time.perf_counter() - wall_start

    cached_speedup = (
        round(totals["cold"] / totals["cached"], 2) if totals["cached"] else None
    )
    warm_speedup = (
        round(totals["cold"] / totals["warm"], 2) if totals["warm"] else None
    )
    if args.min_cached_speedup and cached_speedup is not None:
        assert cached_speedup >= args.min_cached_speedup, (
            f"warm+cached sweep is only {cached_speedup}x faster than cold "
            f"(floor: {args.min_cached_speedup}x)"
        )
    _common.write_snapshot(
        args.output,
        "pareto",
        circuits,
        wall,
        scale=args.scale,
        max_points=args.max_points,
    )
    _common.write_snapshot(
        args.incremental_output,
        "pareto_incremental",
        incremental,
        wall,
        scale=args.scale,
        max_points=args.max_points,
        total_cold_seconds=round(totals["cold"], 4),
        total_warm_seconds=round(totals["warm"], 4),
        total_populate_seconds=round(totals["populate"], 4),
        total_cached_seconds=round(totals["cached"], 4),
        warm_speedup=warm_speedup,
        cached_speedup=cached_speedup,
    )
    print(
        f"incremental sweep: warm {warm_speedup}x, warm+cached "
        f"{cached_speedup}x faster than cold"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
