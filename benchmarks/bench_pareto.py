"""Pareto-sweep benches (A3): the (#N, #D) frontier on the Table 1 suite.

Measures :func:`repro.core.pareto.pareto_sweep` throughput on
representative circuits (pytest-benchmark mode) and — run directly
(``python benchmarks/bench_pareto.py [--scale ci]``) — sweeps **every**
Table 1 registry circuit, asserting the acceptance bar per circuit:

* every frontier point equivalence-checks against the input,
* no returned point is dominated by another,
* every depth-budgeted point respects its budget (``depth <= budget``),
* both unconstrained anchors (``objective="size"`` / ``"depth"``) were
  swept (their extremes-match cross-check lives in ``tests/test_pareto.py``).

The sweep is written to ``BENCH_pareto.json`` next to this file, so
successive PRs have a machine-readable frontier trajectory.
"""

try:
    import pytest
except ModuleNotFoundError:  # standalone snapshot mode needs no pytest
    pytest = None

from repro.circuits.registry import BENCHMARK_NAMES, benchmark_info
from repro.core.pareto import ParetoFront, pareto_sweep

REPRESENTATIVE = ["i2c", "router", "int2float"]


def check_front(front: ParetoFront) -> None:
    """The acceptance bar shared by the pytest and snapshot modes.

    (The stronger cross-check — frontier extremes vs *independently*
    recomputed ``objective="size"``/``"depth"`` rewrites — lives in
    ``tests/test_pareto.py``; repeating those rewrites here would double
    the cost of every snapshot run for a structurally guaranteed
    property, since the sweep always includes both anchors.)
    """
    assert front.points, "empty frontier"
    candidates = (*front.points, *front.dominated)
    for p in candidates:
        assert p.equivalence in ("exhaustive", "random")
        if p.budget is not None:
            assert p.depth <= p.budget, (p.label, p.depth, p.budget)
    for p in front.points:
        for q in front.points:
            assert not p.dominates(q), (p, q)
    assert {"size", "depth"} <= {p.label for p in candidates}


if pytest is not None:

    @pytest.mark.parametrize("name", REPRESENTATIVE)
    def test_pareto_sweep_throughput(benchmark, name, scale):
        mig = benchmark_info(name).build(scale)
        front = benchmark(pareto_sweep, mig, workers=1, max_points=4)
        benchmark.extra_info.update(
            {
                "scale": scale,
                "front_points": len(front.points),
                "dominated": len(front.dominated),
                "depth_span": [front.depth_point.depth, front.size_point.depth],
                "gates_span": [front.size_point.num_gates, front.depth_point.num_gates],
            }
        )
        check_front(front)


# ----------------------------------------------------------------------
# standalone mode: machine-readable frontier trajectory (BENCH_pareto.json)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    """Sweep every registry circuit and write BENCH_pareto.json."""
    import argparse
    import json
    import platform
    import time
    from pathlib import Path

    from repro._version import __version__

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--scale", default="ci", choices=("ci", "default", "paper"))
    parser.add_argument(
        "--workers", type=int, default=1, help="process pool per sweep (default 1)"
    )
    parser.add_argument(
        "--max-points", type=int, default=8, help="intermediate budget cap per circuit"
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(Path(__file__).with_name("BENCH_pareto.json")),
        help="output path (default: BENCH_pareto.json next to this file)",
    )
    args = parser.parse_args(argv)

    circuits = []
    wall_start = time.perf_counter()
    for name in BENCHMARK_NAMES:
        front = pareto_sweep(
            (name, args.scale),
            workers=args.workers,
            max_points=args.max_points,
        )
        check_front(front)
        row = front.to_dict()
        row["front_points"] = len(front.points)
        circuits.append(row)
        span = " -> ".join(
            f"(N={p.num_gates}, D={p.depth})" for p in front.points
        )
        print(
            f"{name}: {len(front.points)} non-dominated point(s) {span} "
            f"[{front.seconds:.2f}s]"
        )
    wall = time.perf_counter() - wall_start

    report = {
        "bench": "pareto",
        "version": __version__,
        "python": platform.python_version(),
        "scale": args.scale,
        "max_points": args.max_points,
        "wall_seconds": round(wall, 4),
        "circuits": circuits,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output} ({len(circuits)} rows, {wall:.2f}s wall)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
