"""PLiM machine benches (Fig. 2 / F2): execution and verification speed.

The machine model is the substrate every experiment stands on; these
benches measure single-bit execution throughput (instructions/second) and
the bit-parallel verification pass that checks hundreds of input patterns
per machine run.
"""

import random

import pytest

from repro.circuits.registry import benchmark_info
from repro.core.pipeline import compile_mig
from repro.plim.machine import PlimMachine
from repro.plim.verify import verify_program


@pytest.fixture(scope="module")
def compiled_adder(scale):
    mig = benchmark_info("adder").build(scale)
    result = compile_mig(mig)
    return mig, result.program


def test_machine_execution(benchmark, compiled_adder):
    mig, program = compiled_adder
    rng = random.Random(1)
    inputs = {name: rng.randint(0, 1) for name in mig.pi_names()}

    def run():
        machine = PlimMachine.for_program(program)
        return machine.run_program(program, inputs)

    benchmark(run)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info.update(
        {
            "instructions": program.num_instructions,
            "instructions_per_second": round(program.num_instructions / mean)
            if mean
            else None,
        }
    )


def test_bit_parallel_verification(benchmark, compiled_adder):
    mig, program = compiled_adder
    result = benchmark(
        verify_program,
        mig,
        program,
        num_random_rounds=1,
        patterns_per_round=256,
    )
    assert result.ok
    benchmark.extra_info["patterns_checked"] = result.patterns_checked


def test_von_neumann_fetch_overhead(benchmark, compiled_adder):
    """Stored-program execution: fetch cycles dominate (Fig. 2 reality)."""
    from repro.plim.controller import FetchingController

    mig, program = compiled_adder
    inputs = {name: 1 for name in mig.pi_names()}

    def run():
        controller = FetchingController(program)
        controller.run(inputs)
        return controller

    controller = benchmark(run)
    ideal = 3 * len(program)
    benchmark.extra_info.update(
        {
            "code_bits": len(controller.image.bits),
            "fetch_cycles": controller.fetch_cycles,
            "execute_cycles": controller.execute_cycles,
            "fetch_overhead_factor": round(controller.total_cycles / ideal, 2),
        }
    )
    assert controller.execute_cycles == ideal
