"""Fig. 3 (experiments F3a/F3b): the paper's motivating examples.

Regenerates all four programs of §3 and asserts the paper's exact counts
(6/2 → 4/1 for Fig. 3(a); 19 vs 15 instructions, 4 work RRAMs smart, for
Fig. 3(b)).  Timing measures the full regeneration.
"""

from repro.eval import fig3


def test_fig3_regeneration(benchmark):
    report = benchmark(fig3.run_fig3)
    assert report.fig3a_before_naive.num_instructions == fig3.FIG3A_BEFORE_INSTRUCTIONS
    assert report.fig3a_before_naive.num_rrams == fig3.FIG3A_BEFORE_RRAMS
    assert report.fig3a_after_smart.num_instructions == fig3.FIG3A_AFTER_INSTRUCTIONS
    assert report.fig3a_after_smart.num_rrams == fig3.FIG3A_AFTER_RRAMS
    assert report.fig3b_naive.num_instructions == fig3.FIG3B_NAIVE_INSTRUCTIONS
    assert report.fig3b_smart.num_instructions == fig3.FIG3B_SMART_INSTRUCTIONS
    assert report.fig3b_smart.num_rrams == fig3.FIG3B_SMART_RRAMS
    benchmark.extra_info.update(
        {
            "fig3a_before": (6, 2),
            "fig3a_after": (4, 1),
            "fig3b_naive_I": report.fig3b_naive.num_instructions,
            "fig3b_smart_I": report.fig3b_smart.num_instructions,
        }
    )


def test_fig3a_rewriting_reaches_optimum(benchmark):
    """Algorithm 1 itself transforms 'before' into the 4-instruction form."""
    from repro.core.compiler import CompilerOptions
    from repro.core.pipeline import compile_mig

    def run():
        return compile_mig(
            fig3.fig3a_before(),
            compiler_options=CompilerOptions(
                fix_output_polarity=False, reorder="none"
            ),
        )

    result = benchmark(run)
    assert result.num_instructions == fig3.FIG3A_AFTER_INSTRUCTIONS
    assert result.num_rrams == fig3.FIG3A_AFTER_RRAMS
