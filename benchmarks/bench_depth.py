"""Depth-rewriting benches (A2): worklist depth engine vs the rebuild oracle.

Measures ``objective="depth"`` rewriting throughput on representative
circuits for both engines — the in-place worklist engine with incremental
level maintenance (the default) and the legacy
``pass_associativity_depth`` rebuild pipeline kept as the differential
oracle — plus the multi-objective ``balanced`` loop on the worklist
engine.

Run directly (``python benchmarks/bench_depth.py [--scale ci]``) to emit
``BENCH_depth.json`` next to this file: per-circuit depth before/after and
seconds per engine plus the worklist speedup, so successive PRs have a
machine-readable depth-rewriting trajectory.  The acceptance bar — the
worklist engine reaches a depth no worse than the oracle's at >= 2x its
wall-clock at default scale — is what this snapshot records.
"""

try:
    import pytest
except ModuleNotFoundError:  # standalone snapshot mode needs no pytest
    pytest = None

from repro.circuits.registry import benchmark_info
from repro.core.rewriting import ENGINES, RewriteOptions, rewrite_for_plim
from repro.mig.analysis import depth

REPRESENTATIVE = ["adder", "sin", "router", "voter", "mem_ctrl"]

if pytest is not None:

    @pytest.mark.parametrize("engine", list(ENGINES))
    @pytest.mark.parametrize("name", REPRESENTATIVE)
    def test_depth_rewrite_throughput(benchmark, name, engine, scale):
        mig = benchmark_info(name).build(scale)
        options = RewriteOptions(effort=4, engine=engine, objective="depth")
        rewritten = benchmark(rewrite_for_plim, mig, options)
        benchmark.extra_info.update(
            {
                "scale": scale,
                "engine": engine,
                "depth_before": depth(mig.cleanup()[0]),
                "depth_after": depth(rewritten),
                "gates_after": rewritten.num_gates,
            }
        )
        assert depth(rewritten) <= depth(mig.cleanup()[0])

    @pytest.mark.parametrize("name", ["adder", "router"])
    def test_balanced_objective_throughput(benchmark, name, scale):
        """The multi-objective loop: size + depth to a joint fixed point."""
        mig = benchmark_info(name).build(scale)
        options = RewriteOptions(effort=4, objective="balanced")
        rewritten = benchmark(rewrite_for_plim, mig, options)
        benchmark.extra_info.update(
            {
                "scale": scale,
                "gates_after": rewritten.num_gates,
                "depth_after": depth(rewritten),
            }
        )
        assert rewritten.num_gates <= mig.cleanup()[0].num_gates


# ----------------------------------------------------------------------
# standalone mode: machine-readable perf trajectory (BENCH_depth.json)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    """Time both depth engines per circuit and write BENCH_depth.json."""
    import time

    import _common

    parser = _common.snapshot_parser(main.__doc__, __file__, "BENCH_depth.json")
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing runs per engine (best is kept)"
    )
    args = parser.parse_args(argv)

    def best_time(mig, options):
        best = None
        for _ in range(max(1, args.repeats)):
            start = time.perf_counter()
            result = rewrite_for_plim(mig, options)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[0]:
                best = (elapsed, result)
        return best

    circuits = []
    wall_start = time.perf_counter()
    for name in REPRESENTATIVE:
        mig = benchmark_info(name).build(args.scale)
        clean = mig.cleanup()[0]
        row = {
            "circuit": name,
            "gates_before": clean.num_gates,
            "depth_before": depth(clean),
            "engines": {},
        }
        for engine in ENGINES:
            seconds, rewritten = best_time(
                mig, RewriteOptions(effort=4, engine=engine, objective="depth")
            )
            row["engines"][engine] = {
                "seconds": round(seconds, 6),
                "depth_after": depth(rewritten),
                "gates_after": rewritten.num_gates,
            }
        seconds, balanced = best_time(
            mig, RewriteOptions(effort=4, objective="balanced")
        )
        row["balanced"] = {
            "seconds": round(seconds, 6),
            "depth_after": depth(balanced),
            "gates_after": balanced.num_gates,
        }
        worklist = row["engines"]["worklist"]
        rebuild = row["engines"]["rebuild"]
        row["speedup"] = (
            round(rebuild["seconds"] / worklist["seconds"], 2)
            if worklist["seconds"]
            else None
        )
        circuits.append(row)
        print(
            f"{name}: depth {row['depth_before']} -> "
            f"wl {worklist['depth_after']} / rb {rebuild['depth_after']}, "
            f"worklist {worklist['seconds']:.4f}s, rebuild "
            f"{rebuild['seconds']:.4f}s ({row['speedup']}x)"
        )
    wall = time.perf_counter() - wall_start

    _common.write_snapshot(
        args.output,
        "depth",
        circuits,
        wall,
        scale=args.scale,
        repeats=args.repeats,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
