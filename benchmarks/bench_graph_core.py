"""Graph-core benches: array-backed storage vs the dict reference core.

Three families of numbers, written to ``BENCH_graph_core.json``:

* **rewriting throughput** — Algorithm 1 (worklist engine, effort 4) on
  the flat struct-of-arrays :class:`~repro.mig.graph.Mig` vs the same
  graph structurally copied into the dict-of-objects
  :class:`~repro.mig.graph_dict.DictMig`, as nodes/second and the
  array/dict ratio;
* **simulation throughput** — word-parallel batched simulation vs a
  scalar one-pattern-at-a-time loop, as patterns/second and the
  batched/scalar ratio (the PR's ``>= 3x`` acceptance gate);
* **peak RSS** — ``resource.getrusage`` high-water mark after pushing a
  mid-size EPFL circuit (``mem_ctrl`` at the default scale) through
  ingest + rewrite + batched simulation, guarded by a hard ceiling so
  memory regressions in the core fail the CI quick job, not a profiler
  session three PRs later.

Run directly (``python benchmarks/bench_graph_core.py [--scale ci]``) for
the snapshot; the pytest entries feed the same workloads through
pytest-benchmark for the quick-mode timing trend.
"""

import random

try:
    import pytest
except ModuleNotFoundError:  # standalone snapshot mode needs no pytest
    pytest = None

from repro.circuits.registry import benchmark_info
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.mig.graph_dict import as_dict_mig
from repro.mig.simulate import simulate_outputs

REPRESENTATIVE = ["adder", "cavlc", "sin", "voter"]
#: the mid-size memory workload and its RSS ceiling (MB).  The circuit is
#: ~8.3k gates / 300 PIs at the default scale; the whole bench peaks well
#: under 300 MB today, so the ceiling flags anything resembling a
#: superlinear blowup without tripping on allocator noise.
RSS_WORKLOAD = ("mem_ctrl", "default")
RSS_CEILING_MB = 600


def _sim_workload(mig, num_patterns: int, seed: int = 20160605):
    rng = random.Random(seed)
    return [rng.getrandbits(num_patterns) for _ in range(mig.num_pis)]


def _scalar_patterns_per_second(mig, packed, num_patterns, budget_patterns=64):
    """Extrapolate the one-pattern-at-a-time rate from a bounded sample."""
    import time

    sample = min(budget_patterns, num_patterns)
    start = time.perf_counter()
    for p in range(sample):
        row = [(value >> p) & 1 for value in packed]
        simulate_outputs(mig, row, 1)
    elapsed = time.perf_counter() - start
    return sample / elapsed if elapsed else None


if pytest is not None:

    @pytest.mark.parametrize("core", ["array", "dict"])
    @pytest.mark.parametrize("name", REPRESENTATIVE)
    def test_rewrite_throughput_by_core(benchmark, name, core, scale):
        mig = benchmark_info(name).build(scale)
        if core == "dict":
            mig = as_dict_mig(mig)
        options = RewriteOptions(effort=4)
        rewritten = benchmark(rewrite_for_plim, mig, options)
        benchmark.extra_info.update(
            {
                "scale": scale,
                "core": core,
                "gates_before": mig.num_gates,
                "gates_after": rewritten.num_gates,
                "nodes_per_second": (
                    round(mig.num_gates / benchmark.stats.stats.mean)
                    if benchmark.stats.stats.mean
                    else None
                ),
            }
        )
        assert rewritten.num_gates <= mig.num_gates

    @pytest.mark.parametrize("name", ["sin", "voter"])
    def test_batched_simulation_throughput(benchmark, name, scale):
        mig = benchmark_info(name).build(scale)
        num_patterns = 4096
        packed = _sim_workload(mig, num_patterns)
        benchmark(simulate_outputs, mig, packed, num_patterns)
        benchmark.extra_info.update(
            {
                "scale": scale,
                "num_patterns": num_patterns,
                "patterns_per_second": (
                    round(num_patterns / benchmark.stats.stats.mean)
                    if benchmark.stats.stats.mean
                    else None
                ),
            }
        )


# ----------------------------------------------------------------------
# standalone mode: machine-readable perf trajectory (BENCH_graph_core.json)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    """Time both cores and both sim modes; write BENCH_graph_core.json."""
    import resource
    import time

    import _common

    parser = _common.snapshot_parser(main.__doc__, __file__, "BENCH_graph_core.json")
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing runs per workload (best kept)"
    )
    parser.add_argument(
        "--rss-ceiling-mb", type=int, default=RSS_CEILING_MB,
        help="fail (exit 1) if peak RSS exceeds this many MB",
    )
    parser.add_argument(
        "--num-patterns", type=int, default=4096,
        help="batch width for the simulation throughput workload",
    )
    args = parser.parse_args(argv)

    def best(fn, *fn_args):
        elapsed = None
        result = None
        for _ in range(max(1, args.repeats)):
            start = time.perf_counter()
            result = fn(*fn_args)
            took = time.perf_counter() - start
            if elapsed is None or took < elapsed:
                elapsed = took
        return elapsed, result

    circuits = []
    wall_start = time.perf_counter()
    options = RewriteOptions(effort=4)
    for name in REPRESENTATIVE:
        mig = benchmark_info(name).build(args.scale)
        row = {"circuit": name, "gates": mig.num_gates, "pis": mig.num_pis}

        rewrite = {}
        for core, graph in (("array", mig), ("dict", as_dict_mig(mig))):
            seconds, rewritten = best(rewrite_for_plim, graph, options)
            rewrite[core] = {
                "seconds": round(seconds, 6),
                "gates_after": rewritten.num_gates,
                "nodes_per_second": round(mig.num_gates / seconds) if seconds else None,
            }
        if rewrite["array"]["gates_after"] != rewrite["dict"]["gates_after"]:
            print(f"FAIL {name}: cores disagree on rewriting output")
            return 1
        row["rewrite"] = rewrite
        row["rewrite_array_vs_dict"] = (
            round(rewrite["dict"]["seconds"] / rewrite["array"]["seconds"], 2)
            if rewrite["array"]["seconds"] else None
        )

        packed = _sim_workload(mig, args.num_patterns)
        batched_seconds, _ = best(simulate_outputs, mig, packed, args.num_patterns)
        batched = args.num_patterns / batched_seconds if batched_seconds else None
        scalar = _scalar_patterns_per_second(mig, packed, args.num_patterns)
        row["sim"] = {
            "num_patterns": args.num_patterns,
            "batched_patterns_per_second": round(batched) if batched else None,
            "scalar_patterns_per_second": round(scalar) if scalar else None,
            "batched_vs_scalar": (
                round(batched / scalar, 1) if batched and scalar else None
            ),
        }
        circuits.append(row)
        print(
            f"{name}: rewrite array/dict {row['rewrite_array_vs_dict']}x, "
            f"sim batched/scalar {row['sim']['batched_vs_scalar']}x"
        )

    # Mid-size memory workload: ingest + rewrite + wide batch, then read
    # the process high-water mark.  ru_maxrss is KB on Linux.
    rss_name, rss_scale = RSS_WORKLOAD
    rss_mig = benchmark_info(rss_name).build(rss_scale)
    rewrite_for_plim(rss_mig.clone(), RewriteOptions(effort=1))
    simulate_outputs(rss_mig, _sim_workload(rss_mig, 65536), 65536)
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    wall = time.perf_counter() - wall_start

    _common.write_snapshot(
        args.output,
        "graph_core",
        circuits,
        wall,
        scale=args.scale,
        repeats=args.repeats,
        rss_workload={"circuit": rss_name, "scale": rss_scale,
                      "gates": rss_mig.num_gates},
        peak_rss_mb=round(peak_rss_mb, 1),
        rss_ceiling_mb=args.rss_ceiling_mb,
    )
    if peak_rss_mb > args.rss_ceiling_mb:
        print(
            f"FAIL peak RSS {peak_rss_mb:.0f} MB exceeds the "
            f"{args.rss_ceiling_mb} MB ceiling"
        )
        return 1
    print(f"peak RSS {peak_rss_mb:.0f} MB (ceiling {args.rss_ceiling_mb} MB)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
