"""Allocator-policy/endurance ablation (X3) and polarity accounting (X4).

X3 quantifies §4.2.3's endurance argument: recycling (FIFO/LIFO) reuses
the same work cells — same cell count and total pulse count, with the
recycling order shifting which cells take the peak wear — while FRESH
trades many more cells for minimal per-cell wear.  Wear numbers come
from actually executing the compiled programs on the machine model.
"""

import pytest

from repro.circuits.registry import benchmark_info
from repro.eval.ablations import allocator_ablation, polarity_ablation


@pytest.mark.parametrize("name", ["voter", "cavlc"])
def test_allocator_policies(benchmark, name, scale):
    mig = benchmark_info(name).build(scale)
    points = benchmark(allocator_ablation, mig)
    by_policy = {p.policy: p for p in points}
    benchmark.extra_info["policies"] = {
        p.policy: {
            "R": p.rrams,
            "max_writes": p.wear.max_writes,
            "gini": round(p.wear.gini, 3),
        }
        for p in points
    }
    # Endurance claims that hold at every scale: FRESH trades cells for
    # peak wear (most cells, never more peak wear than either recycling
    # policy), while FIFO and LIFO only change the recycling *order* —
    # same cell count, same total pulse count, different wear profile.
    # (Which of the two has the lower peak flips per circuit/scale, so
    # it is recorded in extra_info rather than asserted.)
    assert by_policy["fresh"].rrams >= by_policy["fifo"].rrams
    recycled_peaks = (
        by_policy["fifo"].wear.max_writes, by_policy["lifo"].wear.max_writes,
    )
    assert by_policy["fresh"].wear.max_writes <= min(recycled_peaks)
    assert by_policy["fifo"].rrams == by_policy["lifo"].rrams
    assert (
        by_policy["fifo"].wear.total_writes == by_policy["lifo"].wear.total_writes
    )


@pytest.mark.parametrize("name", ["priority", "int2float"])
def test_output_polarity_accounting(benchmark, name, scale):
    """X4: paper accounting vs honest complemented-output fix-ups."""
    mig = benchmark_info(name).build(scale)
    points = benchmark(polarity_ablation, mig)
    by_mode = {p.accounting: p for p in points}
    benchmark.extra_info["modes"] = {
        p.accounting: {"I": p.instructions, "inverted_left": p.inverted_outputs}
        for p in points
    }
    assert by_mode["honest"].inverted_outputs == 0
