"""Algorithm 1 benches (A1) and the rewriting-effort ablation (X1).

Measures MIG rewriting throughput on representative circuits — for both
the in-place worklist engine (the default) and the legacy rebuild pipeline
— and sweeps the ``effort`` parameter (the paper fixes it at 4), recording
how #N, #I and #R respond in ``extra_info``.

Run directly (``python benchmarks/bench_rewriting.py [--scale ci]``) to
emit ``BENCH_rewriting.json`` next to this file: gates/second for each
engine plus the per-circuit speedup, so successive PRs have a
machine-readable rewriting-perf trajectory.
"""

try:
    import pytest
except ModuleNotFoundError:  # standalone snapshot mode needs no pytest
    pytest = None

from repro.circuits.registry import benchmark_info
from repro.core.rewriting import ENGINES, RewriteOptions, rewrite_for_plim
from repro.eval.ablations import effort_sweep

REPRESENTATIVE = ["adder", "cavlc", "sin", "voter"]

if pytest is not None:

    @pytest.mark.parametrize("engine", list(ENGINES))
    @pytest.mark.parametrize("name", REPRESENTATIVE)
    def test_rewrite_throughput(benchmark, name, engine, scale):
        mig = benchmark_info(name).build(scale)
        options = RewriteOptions(effort=4, engine=engine)
        rewritten = benchmark(rewrite_for_plim, mig, options)
        benchmark.extra_info.update(
            {
                "scale": scale,
                "engine": engine,
                "gates_before": mig.num_gates,
                "gates_after": rewritten.num_gates,
                "gates_per_second": (
                    round(mig.num_gates / benchmark.stats.stats.mean)
                    if benchmark.stats.stats.mean
                    else None
                ),
            }
        )
        assert rewritten.num_gates <= mig.num_gates

    @pytest.mark.parametrize("name", ["cavlc", "int2float"])
    def test_effort_sweep(benchmark, name, scale):
        """X1: cost vs effort — most of the win lands by effort 1-2."""
        mig = benchmark_info(name).build(scale)
        points = benchmark(effort_sweep, mig, (0, 1, 2, 4, 8))
        benchmark.extra_info["sweep"] = {
            p.effort: {"N": p.num_gates, "I": p.instructions, "R": p.rrams}
            for p in points
        }
        by_effort = {p.effort: p for p in points}
        # Rewriting may trade a couple of instructions for cells (it optimizes
        # the combined cost); neither metric may regress materially.
        base = by_effort[0]
        for effort in (4, 8):
            point = by_effort[effort]
            slack = max(2, base.instructions // 50)
            assert point.instructions <= base.instructions + slack
            assert point.rrams <= base.rrams + max(2, base.rrams // 10)
            assert (point.instructions < base.instructions) or (
                point.rrams <= base.rrams
            )


# ----------------------------------------------------------------------
# standalone mode: machine-readable perf trajectory (BENCH_rewriting.json)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    """Time both engines per circuit and write BENCH_rewriting.json."""
    import time

    import _common

    parser = _common.snapshot_parser(main.__doc__, __file__, "BENCH_rewriting.json")
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing runs per engine (best is kept)"
    )
    args = parser.parse_args(argv)

    def best_time(mig, options):
        best = None
        for _ in range(max(1, args.repeats)):
            start = time.perf_counter()
            result = rewrite_for_plim(mig, options)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[0]:
                best = (elapsed, result)
        return best

    circuits = []
    wall_start = time.perf_counter()
    for name in REPRESENTATIVE:
        mig = benchmark_info(name).build(args.scale)
        row = {"circuit": name, "gates_before": mig.num_gates, "engines": {}}
        for engine in ENGINES:
            seconds, rewritten = best_time(mig, RewriteOptions(effort=4, engine=engine))
            row["engines"][engine] = {
                "seconds": round(seconds, 6),
                "gates_after": rewritten.num_gates,
                "gates_per_second": round(mig.num_gates / seconds) if seconds else None,
            }
        worklist = row["engines"]["worklist"]["seconds"]
        rebuild = row["engines"]["rebuild"]["seconds"]
        row["speedup"] = round(rebuild / worklist, 2) if worklist else None
        circuits.append(row)
        print(
            f"{name}: worklist {worklist:.4f}s, rebuild {rebuild:.4f}s "
            f"({row['speedup']}x)"
        )
    wall = time.perf_counter() - wall_start

    _common.write_snapshot(
        args.output,
        "rewriting",
        circuits,
        wall,
        scale=args.scale,
        repeats=args.repeats,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
