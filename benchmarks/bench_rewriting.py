"""Algorithm 1 benches (A1) and the rewriting-effort ablation (X1).

Measures MIG rewriting throughput on representative circuits and sweeps
the ``effort`` parameter (the paper fixes it at 4), recording how #N, #I
and #R respond in ``extra_info``.
"""

import pytest

from repro.circuits.registry import benchmark_info
from repro.core.rewriting import RewriteOptions, rewrite_for_plim
from repro.eval.ablations import effort_sweep

REPRESENTATIVE = ["adder", "cavlc", "sin", "voter"]


@pytest.mark.parametrize("name", REPRESENTATIVE)
def test_rewrite_throughput(benchmark, name, scale):
    mig = benchmark_info(name).build(scale)
    rewritten = benchmark(rewrite_for_plim, mig, RewriteOptions(effort=4))
    benchmark.extra_info.update(
        {
            "scale": scale,
            "gates_before": mig.num_gates,
            "gates_after": rewritten.num_gates,
            "gates_per_second": (
                round(mig.num_gates / benchmark.stats.stats.mean)
                if benchmark.stats.stats.mean
                else None
            ),
        }
    )
    assert rewritten.num_gates <= mig.num_gates


@pytest.mark.parametrize("name", ["cavlc", "int2float"])
def test_effort_sweep(benchmark, name, scale):
    """X1: cost vs effort — most of the win lands by effort 1-2."""
    mig = benchmark_info(name).build(scale)
    points = benchmark(effort_sweep, mig, (0, 1, 2, 4, 8))
    benchmark.extra_info["sweep"] = {
        p.effort: {"N": p.num_gates, "I": p.instructions, "R": p.rrams}
        for p in points
    }
    by_effort = {p.effort: p for p in points}
    # Rewriting may trade a couple of instructions for cells (it optimizes
    # the combined cost); neither metric may regress materially.
    base = by_effort[0]
    for effort in (4, 8):
        point = by_effort[effort]
        slack = max(2, base.instructions // 50)
        assert point.instructions <= base.instructions + slack
        assert point.rrams <= base.rrams + max(2, base.rrams // 10)
        assert (point.instructions < base.instructions) or (
            point.rrams <= base.rrams
        )
