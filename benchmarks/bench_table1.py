"""Table 1 (experiment T1): the paper's main evaluation, per benchmark.

Each bench runs the full three-configuration measurement for one EPFL
circuit — naïve translation, rewriting + naïve, rewriting + compilation —
and records the quality metrics (#N/#I/#R and the improvements against the
naïve baseline) in ``extra_info``.  Timing measures the complete pipeline
run, which is the compiler's end-to-end throughput.

Run ``plimc table1 --scale default`` for the human-readable table instead.
"""

import pytest

from repro.circuits.registry import BENCHMARK_NAMES, benchmark_info
from repro.eval.table1 import measure_mig


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_table1_row(benchmark, name, scale):
    mig = benchmark_info(name).build(scale)
    row = benchmark(measure_mig, mig, name, effort=4, paper_accounting=True)
    paper = benchmark_info(name).paper
    benchmark.extra_info.update(
        {
            "scale": scale,
            "pi": row.pi,
            "po": row.po,
            "naive_N": row.naive_n,
            "naive_I": row.naive_i,
            "naive_R": row.naive_r,
            "rewr_I": row.rewr_i,
            "rewr_R": row.rewr_r,
            "full_I": row.full_i,
            "full_R": row.full_r,
            "full_I_impr_pct": round(row.full_i_impr, 2),
            "full_R_impr_pct": round(row.full_r_impr, 2),
            "paper_full_I_impr_pct": round(
                (1 - paper.full_i / paper.naive_i) * 100, 2
            ),
            "paper_full_R_impr_pct": round(
                (1 - paper.full_r / paper.naive_r) * 100, 2
            ),
        }
    )
    # The reproduction's qualitative claims, asserted on every run:
    assert row.full_i < row.naive_i  # compilation shrinks programs
    assert row.rewr_n <= row.naive_n  # rewriting never grows the MIG
