"""Shared configuration for the benchmark harness.

Every paper artifact (Table 1, Fig. 3, Algorithms 1/2, the machine model)
has a bench here.  The workload size is selected with the ``REPRO_SCALE``
environment variable: ``ci`` (default; seconds for the whole harness),
``default`` (the EXPERIMENTS.md numbers), or ``paper`` (full Table 1 I/O
sizes; minutes in pure Python).

Measured quality metrics (#I, #R, improvements) are attached to each bench
via ``benchmark.extra_info`` so they land in the JSON alongside runtimes.
"""

import os

import pytest

SCALE = os.environ.get("REPRO_SCALE", "ci")


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE


def pytest_report_header(config):
    return f"repro benchmark scale: {SCALE} (set REPRO_SCALE=ci|default|paper)"
