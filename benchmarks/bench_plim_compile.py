"""Array-fast Algorithm 2 benches: compile speedup, kernels, cost-loop.

The compiler carries two complete translation engines —
``CompilerOptions(implementation="fast")`` (raw child encodings, flat
program columns, lazy comments) and ``"object"``, the original
Signal/dict path kept verbatim as the differential oracle.  Run directly
(``python benchmarks/bench_plim_compile.py [--scale ci]``) this bench is
the acceptance gate of that split:

* every registry circuit is compiled by both engines under both
  allocator policies *and* the naïve baseline, and the ``.plim`` texts
  must be **byte-identical** (the recorded justification for not bumping
  ``ALGORITHM_REVISION``: a bit-identical engine swap keeps cached
  entries valid, exactly like the PR 6 array-core swap);
* the end-to-end ``PlimCompiler.compile`` speedup (aggregate over the
  registry, best-of-``--repeats`` per engine) must meet ``--min-speedup``
  (default 3x) or the script **exits nonzero**;
* machine throughput is recorded for all three kernels (object
  interpreter, compiled plan, chunked-numpy where available), plus the
  ``CompiledPlim.measure`` latency and the ``compile_cost_loop``
  wall-clock under each engine — the downstream loops the fast path
  exists to accelerate.

Results land in ``BENCH_plim_compile.json`` next to this file.
"""

import random
from dataclasses import replace

try:
    import pytest
except ModuleNotFoundError:  # standalone snapshot mode needs no pytest
    pytest = None

from repro.circuits.registry import BENCHMARK_NAMES, benchmark_info
from repro.core.compiler import CompilerOptions, PlimCompiler

REPRESENTATIVE = ["voter", "router"]

#: the option sets whose outputs the gate pins byte-identical
IDENTITY_CONFIGS = {
    "fifo": CompilerOptions(allocator_policy="fifo"),
    "lifo": CompilerOptions(allocator_policy="lifo"),
    "naive": CompilerOptions.naive(),
}


def _compile_text(mig, options: CompilerOptions, implementation: str) -> str:
    opts = replace(options, implementation=implementation)
    return PlimCompiler(opts).compile(mig).to_text()


def _best_of(repeats: int, fn) -> float:
    from time import perf_counter

    best = None
    for _ in range(repeats):
        start = perf_counter()
        fn()
        elapsed = perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


if pytest is not None:

    @pytest.mark.parametrize("name", REPRESENTATIVE)
    def test_compile_fast_throughput(benchmark, name, scale):
        mig = benchmark_info(name).build(scale)
        options = CompilerOptions(implementation="fast")
        program = benchmark(lambda: PlimCompiler(options).compile(mig))
        gates = program.num_instructions  # proxy floor; exact below
        oracle_s = _best_of(
            1, lambda: PlimCompiler(
                CompilerOptions(implementation="object")
            ).compile(mig)
        )
        mean = benchmark.stats.stats.mean
        benchmark.extra_info.update(
            {
                "scale": scale,
                "num_instructions": program.num_instructions,
                "num_rrams": program.num_rrams,
                "oracle_seconds": round(oracle_s, 6),
                "speedup_vs_oracle": round(oracle_s / mean, 2),
            }
        )
        assert gates > 0

    @pytest.mark.parametrize("name", REPRESENTATIVE)
    def test_fast_is_byte_identical(benchmark, name, scale):
        mig = benchmark_info(name).build(scale)
        fast_text = benchmark(
            lambda: _compile_text(mig, IDENTITY_CONFIGS["fifo"], "fast")
        )
        assert fast_text == _compile_text(mig, IDENTITY_CONFIGS["fifo"], "object")


# ----------------------------------------------------------------------
# standalone mode: the acceptance gate (BENCH_plim_compile.json)
# ----------------------------------------------------------------------


def _machine_kernels(program, pi_names) -> dict:
    """M-instructions/second of every kernel on one compiled program."""
    from time import perf_counter

    from repro.plim import machine as machine_mod
    from repro.plim.machine import PlimMachine

    rng = random.Random(11)
    rates = {}
    plans = (
        ("object", 1),
        ("plan", 1),
        ("numpy", machine_mod._NUMPY_MIN_WIDTH),
    )
    for kernel, width in plans:
        if kernel == "numpy" and machine_mod._np is None:
            rates["numpy"] = None
            continue
        mask = (1 << width) - 1
        inputs = {n: rng.randrange(0, 1 << width) & mask for n in program.input_cells}
        runs = 0
        start = perf_counter()
        while perf_counter() - start < 0.2:
            machine = PlimMachine.for_program(program, width=width, kernel=kernel)
            machine.run_program(program, inputs)
            runs += 1
        elapsed = perf_counter() - start
        # the numpy kernel evaluates `width` lanes per instruction, so its
        # M-instr/s is not lane-comparable to the scalar kernels — record
        # the width alongside the rate
        rates[kernel] = {
            "minstr_per_s": round(program.num_instructions * runs / elapsed / 1e6, 3),
            "width": width,
        }
    return rates


def main(argv=None) -> int:
    """Gate the fast engine: 18/18 byte-identical programs and the
    aggregate compile speedup, recorded in BENCH_plim_compile.json."""
    import time

    import _common

    parser = _common.snapshot_parser(
        main.__doc__, __file__, "BENCH_plim_compile.json"
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing runs per engine per circuit; best-of wins (default 3)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="required aggregate fast-vs-object compile speedup (default 3.0)",
    )
    args = parser.parse_args(argv)

    wall_start = time.perf_counter()
    circuits = []
    total_fast = total_object = 0.0
    identical = 0
    for name in BENCHMARK_NAMES:
        mig = benchmark_info(name).build(args.scale)
        for config, options in IDENTITY_CONFIGS.items():
            fast_text = _compile_text(mig, options, "fast")
            oracle_text = _compile_text(mig, options, "object")
            assert fast_text == oracle_text, (
                f"{name}/{config}: fast and object programs differ — "
                f"the engines must stay byte-identical"
            )
        identical += 1

        fast_s = _best_of(
            args.repeats,
            lambda: PlimCompiler(CompilerOptions(implementation="fast")).compile(mig),
        )
        object_s = _best_of(
            args.repeats,
            lambda: PlimCompiler(CompilerOptions(implementation="object")).compile(mig),
        )
        total_fast += fast_s
        total_object += object_s
        gates = mig.cleanup()[0].num_gates
        circuits.append(
            {
                "name": name,
                "gates": gates,
                "fast_seconds": round(fast_s, 6),
                "object_seconds": round(object_s, 6),
                "speedup": round(object_s / fast_s, 2),
                "fast_us_per_gate": round(fast_s * 1e6 / max(gates, 1), 2),
            }
        )
        print(
            f"{name:12s} fast {fast_s * 1e3:7.2f}ms  object {object_s * 1e3:7.2f}ms  "
            f"x{object_s / fast_s:.2f}"
        )

    aggregate = total_object / total_fast

    # downstream consumers: kernels, measure latency, the cost loop
    from repro.core.cost import CompiledPlim
    from repro.core.rewriting import compile_cost_loop

    kernel_mig = benchmark_info("voter").build(args.scale)
    kernel_program = PlimCompiler().compile(kernel_mig)
    kernels = _machine_kernels(kernel_program, kernel_mig.pi_names())

    measure_latency = {}
    for implementation in ("fast", "object"):
        model = CompiledPlim(implementation=implementation)
        start = time.perf_counter()
        model.measure(kernel_mig)
        measure_latency[implementation] = round(time.perf_counter() - start, 6)

    cost_loop_seconds = {}
    loop_mig = benchmark_info("priority").build(args.scale)
    for implementation in ("fast", "object"):
        model = CompiledPlim(implementation=implementation)
        start = time.perf_counter()
        compile_cost_loop(loop_mig, objective=model, effort=2, max_iterations=2)
        cost_loop_seconds[implementation] = round(time.perf_counter() - start, 4)

    report_meta = {
        "scale": args.scale,
        "repeats": args.repeats,
        "identical_circuits": identical,
        "identity_configs": sorted(IDENTITY_CONFIGS),
        "aggregate_speedup": round(aggregate, 2),
        "min_speedup": args.min_speedup,
        "machine_minstr_per_s": kernels,
        "compiled_plim_measure_seconds": measure_latency,
        "cost_loop_seconds": cost_loop_seconds,
    }
    _common.write_snapshot(
        args.output,
        "plim_compile",
        circuits,
        time.perf_counter() - wall_start,
        **report_meta,
    )
    print(
        f"aggregate speedup x{aggregate:.2f} "
        f"({identical}/{len(BENCHMARK_NAMES)} circuits byte-identical "
        f"across {len(IDENTITY_CONFIGS)} option sets)"
    )
    if aggregate < args.min_speedup:
        print(
            f"FAIL: aggregate compile speedup x{aggregate:.2f} is below the "
            f"x{args.min_speedup} gate"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
