"""Cost-loop benches: the closed synthesis↔scheduling loop (PR 8).

Measures :func:`repro.core.rewriting.compile_cost_loop` throughput on
representative circuits (pytest-benchmark mode) and — run directly
(``python benchmarks/bench_cost_loop.py [--scale ci]``) — runs **every**
Table 1 registry circuit three ways:

* ``size`` — plain Algorithm 1 (the #N-optimal MIG), compiled once;
* ``static-plim`` — guided rewriting against the §4.2.2 instruction
  *estimate*;
* ``plim`` — guided rewriting against the real compiled #I/#R
  (synthesize → schedule → re-synthesize to a cost fixed point).

All three are compiled under identical options, so their #I are directly
comparable.  The snapshot asserts the loop never ships a worse program
than the size rewrite and that on at least one circuit the #N-optimal
MIG is *not* #I-optimal (the loop strictly improves it) — the paper-gap
observation this PR's cost models exist to close.  Results land in
``BENCH_cost_loop.json`` next to this file, so successive PRs have a
machine-readable trajectory of the static-vs-compiled objective gap,
loop iteration counts and wall time.
"""

try:
    import pytest
except ModuleNotFoundError:  # standalone snapshot mode needs no pytest
    pytest = None

from repro.circuits.registry import BENCHMARK_NAMES, benchmark_info
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.rewriting import RewriteOptions, compile_cost_loop, rewrite_for_plim

REPRESENTATIVE = ["priority", "router"]


def size_rewrite_instructions(mig, effort: int) -> int:
    """Real #I of the #N-optimal (objective="size") rewrite."""
    rewritten = rewrite_for_plim(mig, RewriteOptions(effort=effort))
    program = PlimCompiler(CompilerOptions(fix_output_polarity=False)).compile(
        rewritten
    )
    return program.num_instructions


if pytest is not None:

    @pytest.mark.parametrize("name", REPRESENTATIVE)
    def test_cost_loop_throughput(benchmark, name, scale):
        mig = benchmark_info(name).build(scale)
        result = benchmark(compile_cost_loop, mig, effort=2)
        benchmark.extra_info.update(
            {
                "scale": scale,
                "baseline_i": result.baseline["num_instructions"],
                "final_i": result.num_instructions,
                "iterations": result.iterations,
                "converged": result.converged,
            }
        )
        assert result.num_instructions <= result.baseline["num_instructions"]


# ----------------------------------------------------------------------
# standalone mode: static-vs-compiled trajectory (BENCH_cost_loop.json)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    """Run the cost loop on every registry circuit and write
    BENCH_cost_loop.json (static-vs-compiled #I, iterations, wall time)."""
    import time

    import _common

    parser = _common.snapshot_parser(main.__doc__, __file__, "BENCH_cost_loop.json")
    parser.add_argument(
        "--effort", type=int, default=4, help="guided-loop round budget (default 4)"
    )
    args = parser.parse_args(argv)

    circuits = []
    strict_improvements = 0
    wall_start = time.perf_counter()
    for name in BENCHMARK_NAMES:
        mig = benchmark_info(name).build(args.scale)
        size_i = size_rewrite_instructions(mig, args.effort)

        start = time.perf_counter()
        static = compile_cost_loop(mig, objective="static-plim", effort=args.effort)
        static_s = time.perf_counter() - start
        start = time.perf_counter()
        compiled = compile_cost_loop(mig, objective="plim", effort=args.effort)
        compiled_s = time.perf_counter() - start

        assert compiled.num_instructions <= compiled.baseline["num_instructions"], (
            f"{name}: loop shipped a worse program than its own baseline"
        )
        assert compiled.num_instructions <= size_i, (
            f"{name}: compiled-cost loop lost to the plain size rewrite "
            f"({compiled.num_instructions} > {size_i})"
        )
        if compiled.num_instructions < size_i:
            strict_improvements += 1

        circuits.append(
            {
                "name": name,
                "baseline_i": compiled.baseline["num_instructions"],
                "size_i": size_i,
                "static_i": static.num_instructions,
                "plim_i": compiled.num_instructions,
                "plim_r": compiled.num_rrams,
                "static_iterations": static.iterations,
                "plim_iterations": compiled.iterations,
                "converged": compiled.converged,
                "static_seconds": round(static_s, 4),
                "plim_seconds": round(compiled_s, 4),
            }
        )
        print(
            f"{name:12s} size #I {size_i:6d}  static {static.num_instructions:6d}  "
            f"plim {compiled.num_instructions:6d}  "
            f"({compiled.iterations} round(s), {compiled_s:.2f}s)"
        )

    assert strict_improvements >= 1, (
        "no registry circuit where the compiled-cost loop beats the "
        "#N-optimal rewrite — the closed loop should find at least one"
    )
    _common.write_snapshot(
        args.output,
        "cost_loop",
        circuits,
        time.perf_counter() - wall_start,
        scale=args.scale,
        effort=args.effort,
        strict_improvements=strict_improvements,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
