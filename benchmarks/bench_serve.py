"""Serving-layer throughput and dedup benches (``plimc serve``).

The server's pitch is that the shared :class:`~repro.core.cache
.SynthesisCache` plus in-flight dedup turn a request storm into a
handful of real compiles.  This bench measures that pitch on the mixed
registry workload, in-process (the protocol harness's client — no
sockets, so the numbers are compile economics, not TCP noise):

* **cold**: a fresh server answering 100 mixed requests (every registry
  circuit, cycled) — every distinct circuit compiles once, concurrent
  duplicates collapse; zero requests may shed or fail.
* **warm**: the same 100 requests again on the now-hot cache — answered
  from the compilation cache without touching the compiler.  The gate
  ``warm_speedup >= 3`` is what makes the cache worth serving over.
* **dedup**: 20 identical concurrent submissions — exactly one compile,
  19 collapsed, byte-identical bodies.
* **workers**: the cold workload at 1..4 compile slots (thread-level
  concurrency; pure-Python compiles are GIL-bound, so this leg records
  the scaling reality rather than gating on it).

Run directly (``python benchmarks/bench_serve.py [--scale ci]``) to
emit ``BENCH_serve.json``; exits nonzero when a request drops, the warm
speedup misses 3x, or dedup fails to collapse — the CI gates.
"""

try:
    import pytest
except ModuleNotFoundError:  # standalone snapshot mode needs no pytest
    pytest = None

import asyncio
import io

from repro.circuits.registry import BENCHMARK_NAMES, build
from repro.mig.io_mig import write_mig
from repro.serve.app import PlimServer, ServerConfig
from repro.serve.protocol import Request, canonical_json

_REQUESTS = 100
_DEDUP_BURST = 20


def _mig_texts(scale: str, names=None) -> list:
    texts = []
    for name in names or BENCHMARK_NAMES:
        buf = io.StringIO()
        write_mig(build(name, scale), buf)
        texts.append(buf.getvalue())
    return texts


def _compile_request(text: str) -> Request:
    return Request(
        "POST", "/compile", canonical_json({"circuit": text, "format": "mig"})
    )


async def _fire(app: PlimServer, requests: list) -> list:
    from concurrent.futures import ThreadPoolExecutor

    asyncio.get_running_loop().set_default_executor(
        ThreadPoolExecutor(max_workers=32)
    )
    return await asyncio.gather(*[app.handle(r) for r in requests])


def _mixed_workload(texts: list, total: int) -> list:
    return [_compile_request(texts[i % len(texts)]) for i in range(total)]


def _make_app(workers: int = 2) -> PlimServer:
    # queue_limit above the workload size: this bench measures
    # throughput, not shedding (shedding has its own tier-1 tests)
    return PlimServer(
        ServerConfig(workers=workers, queue_limit=4 * _REQUESTS)
    )


if pytest is not None:

    def test_served_workload_matches_direct_pipeline(scale):
        """The server answers the registry workload with the library's
        exact results — and zero drops."""
        from repro.core.pipeline import compile_mig
        from repro.serve.protocol import parse_circuit
        from repro.serve.worker import build_record

        texts = _mig_texts(scale, BENCHMARK_NAMES[:4])
        app = _make_app()
        responses = asyncio.run(
            _fire(app, [_compile_request(t) for t in texts])
        )
        assert [r.status for r in responses] == [200] * len(texts)
        for text, response in zip(texts, responses):
            mig = parse_circuit({"circuit": text, "format": "mig"})
            direct = build_record(mig.name, compile_mig(mig))
            served = response.json()
            assert served["num_instructions"] == direct["num_instructions"]
            assert served["program"] == direct["program"]

    def test_identical_burst_collapses_to_one_compile(scale):
        texts = _mig_texts(scale, BENCHMARK_NAMES[:1])
        app = _make_app()
        burst = [_compile_request(texts[0]) for _ in range(8)]
        responses = asyncio.run(_fire(app, burst))
        assert [r.status for r in responses] == [200] * 8
        assert app.counters["compiles"] == 1
        assert len({r.body for r in responses}) == 1


# ----------------------------------------------------------------------
# standalone mode: machine-readable perf trajectory (BENCH_serve.json)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    """Measure served req/s cold vs warm, the dedup collapse ratio and
    worker scaling; write BENCH_serve.json and gate on the contracts."""
    import os
    import time

    import _common

    parser = _common.snapshot_parser(main.__doc__, __file__, "BENCH_serve.json")
    parser.add_argument("--requests", type=int, default=_REQUESTS)
    parser.add_argument(
        "--min-warm-speedup",
        type=float,
        default=3.0,
        help="fail (exit 1) when the warm workload is not at least this "
        "many times faster than cold",
    )
    args = parser.parse_args(argv)

    texts = _mig_texts(args.scale)
    start = time.perf_counter()

    # cold + warm: same app, same 100 mixed requests, twice
    app = _make_app()
    workload = _mixed_workload(texts, args.requests)
    t0 = time.perf_counter()
    cold = asyncio.run(_fire(app, workload))
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = asyncio.run(_fire(app, _mixed_workload(texts, args.requests)))
    warm_s = time.perf_counter() - t0
    cold_ok = [r.status for r in cold] == [200] * args.requests
    warm_ok = [r.status for r in warm] == [200] * args.requests
    warm_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    compiles = app.counters["compiles"]

    # dedup burst: 20 identical concurrent → one compile
    dedup_app = _make_app()
    burst = [_compile_request(texts[0]) for _ in range(_DEDUP_BURST)]
    t0 = time.perf_counter()
    burst_responses = asyncio.run(_fire(dedup_app, burst))
    dedup_s = time.perf_counter() - t0
    burst_ok = [r.status for r in burst_responses] == [200] * _DEDUP_BURST
    burst_bodies = len({r.body for r in burst_responses})
    collapsed = dedup_app.dedup.collapsed
    dedup_compiles = dedup_app.counters["compiles"]

    # worker scaling: the cold workload at 1..4 compile slots
    scaling = []
    for workers in range(1, min(4, os.cpu_count() or 1) + 1):
        sweep_app = _make_app(workers=workers)
        t0 = time.perf_counter()
        responses = asyncio.run(
            _fire(sweep_app, _mixed_workload(texts, args.requests))
        )
        wall = time.perf_counter() - t0
        scaling.append(
            {
                "workers": workers,
                "seconds": round(wall, 4),
                "req_per_s": round(args.requests / wall, 1),
                "dropped": sum(1 for r in responses if r.status != 200),
            }
        )

    wall = time.perf_counter() - start
    _common.write_snapshot(
        args.output,
        "serve",
        [{"circuit": name} for name in BENCHMARK_NAMES],
        wall,
        scale=args.scale,
        requests=args.requests,
        cold={
            "seconds": round(cold_s, 4),
            "req_per_s": round(args.requests / cold_s, 1),
            "compiles": compiles,
            "dropped": sum(1 for r in cold if r.status != 200),
        },
        warm={
            "seconds": round(warm_s, 4),
            "req_per_s": round(args.requests / warm_s, 1),
            "dropped": sum(1 for r in warm if r.status != 200),
        },
        warm_speedup=round(warm_speedup, 2),
        dedup={
            "burst": _DEDUP_BURST,
            "seconds": round(dedup_s, 4),
            "compiles": dedup_compiles,
            "collapsed": collapsed,
            "collapse_ratio": round(collapsed / _DEDUP_BURST, 3),
            "distinct_bodies": burst_bodies,
        },
        scaling=scaling,
    )
    ok = (
        cold_ok
        and warm_ok
        and burst_ok
        and warm_speedup >= args.min_warm_speedup
        and dedup_compiles == 1
        and collapsed == _DEDUP_BURST - 1
        and burst_bodies == 1
        and all(leg["dropped"] == 0 for leg in scaling)
    )
    if not ok:
        print(
            f"FAIL: cold_ok={cold_ok} warm_ok={warm_ok} burst_ok={burst_ok} "
            f"warm_speedup={warm_speedup:.2f}x "
            f"(min {args.min_warm_speedup}x), dedup compiles={dedup_compiles} "
            f"collapsed={collapsed} bodies={burst_bodies}"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
