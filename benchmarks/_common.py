"""Shared plumbing for the ``bench_*.py`` standalone snapshot modes.

Every benchmark module doubles as a script that writes a machine-readable
``BENCH_*.json`` snapshot next to itself (the perf trajectory successive
PRs compare against).  The argument parsing, the machine stamp and the
JSON writing are identical across them — this module is the single copy.

Import it *inside* ``main()`` (``import _common``): the benchmarks
directory is on ``sys.path`` when a bench runs as a script, but the
modules are also imported by pytest for their benchmark tests, which must
not depend on it at collection time.
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

#: the workload sizes every snapshot accepts
SCALES = ("ci", "default", "paper")


def snapshot_parser(
    description: str, bench_file: str, output_name: str
) -> argparse.ArgumentParser:
    """The argument parser every snapshot mode shares.

    ``--scale`` (ci/default/paper, default ci) and ``-o/--output``
    (defaulting to ``output_name`` next to ``bench_file``); callers add
    their bench-specific flags on top.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--scale", default="ci", choices=SCALES)
    parser.add_argument(
        "-o",
        "--output",
        default=str(Path(bench_file).with_name(output_name)),
        help=f"output path (default: {output_name} next to this file)",
    )
    return parser


def machine_stamp() -> dict:
    """The provenance fields every snapshot carries."""
    from repro._version import __version__

    return {"version": __version__, "python": platform.python_version()}


def write_snapshot(
    output, bench: str, circuits: list, wall_seconds: float, **meta
) -> dict:
    """Assemble, write and announce one ``BENCH_*.json`` snapshot.

    ``meta`` carries the bench-specific report fields (scale, workers,
    repeats, ...); the machine stamp and the wall clock are added here so
    no emitter can forget them.  Returns the report dict.
    """
    report = {
        "bench": bench,
        **machine_stamp(),
        **meta,
        "wall_seconds": round(wall_seconds, 4),
        "circuits": circuits,
    }
    Path(output).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output} ({len(circuits)} rows, {wall_seconds:.2f}s wall)")
    return report
