"""Algorithm 2 benches (A2) and the candidate-selection ablation (X2/X5).

Measures compilation throughput and compares scheduling/translation rule
sets on both as-built and shuffled (netlist-file-like) gate orders, which
is where candidate selection earns the paper's #R reductions.
"""

import pytest

from repro.circuits.registry import benchmark_info
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.rewriting import rewrite_for_plim
from repro.eval.ablations import SELECTION_CONFIGS
from repro.mig.reorder import shuffle_topological

REPRESENTATIVE = ["bar", "mem_ctrl"]


@pytest.mark.parametrize("name", REPRESENTATIVE)
def test_compile_throughput(benchmark, name, scale):
    mig = rewrite_for_plim(benchmark_info(name).build(scale))
    compiler = PlimCompiler(CompilerOptions(fix_output_polarity=False))
    program = benchmark(compiler.compile, mig)
    benchmark.extra_info.update(
        {
            "scale": scale,
            "gates": mig.num_gates,
            "instructions": program.num_instructions,
            "work_rrams": program.num_rrams,
        }
    )


@pytest.mark.parametrize("config", list(SELECTION_CONFIGS))
@pytest.mark.parametrize("order", ["as-built", "shuffled"])
def test_selection_rules(benchmark, config, order, scale):
    """X2/X5: every scheduling rule set on friendly and hostile orders."""
    mig = rewrite_for_plim(benchmark_info("mem_ctrl").build(scale))
    if order == "shuffled":
        mig = shuffle_topological(mig, seed=42)
    compiler = PlimCompiler(SELECTION_CONFIGS[config])
    program = benchmark(compiler.compile, mig)
    benchmark.extra_info.update(
        {
            "scale": scale,
            "order": order,
            "instructions": program.num_instructions,
            "work_rrams": program.num_rrams,
        }
    )


def test_scheduler_beats_naive_on_hostile_order(scale):
    """The paper's central #R claim, on netlist-file-like gate order."""
    mig = rewrite_for_plim(benchmark_info("mem_ctrl").build(scale))
    hostile = shuffle_topological(mig, seed=42)
    naive = PlimCompiler(
        CompilerOptions.naive(fix_output_polarity=False)
    ).compile(hostile)
    smart = PlimCompiler(CompilerOptions(fix_output_polarity=False)).compile(hostile)
    assert smart.num_rrams < naive.num_rrams
    assert smart.num_instructions < naive.num_instructions
