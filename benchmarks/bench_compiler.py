"""Algorithm 2 benches (A2) and the candidate-selection ablation (X2/X5).

Measures compilation throughput and compares scheduling/translation rule
sets on both as-built and shuffled (netlist-file-like) gate orders, which
is where candidate selection earns the paper's #R reductions.

Run directly (``python benchmarks/bench_compiler.py [--scale ci] [--workers N]``)
to emit ``BENCH_compiler.json`` next to this file: wall time plus #I/#R per
registry circuit, so successive PRs have a machine-readable perf trajectory.
"""

try:
    import pytest
except ModuleNotFoundError:  # standalone snapshot mode needs no pytest
    pytest = None

from repro.circuits.registry import benchmark_info
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.rewriting import rewrite_for_plim
from repro.eval.ablations import SELECTION_CONFIGS
from repro.mig.reorder import shuffle_topological

REPRESENTATIVE = ["bar", "mem_ctrl"]

if pytest is not None:

    @pytest.mark.parametrize("name", REPRESENTATIVE)
    def test_compile_throughput(benchmark, name, scale):
        mig = rewrite_for_plim(benchmark_info(name).build(scale))
        compiler = PlimCompiler(CompilerOptions(fix_output_polarity=False))
        program = benchmark(compiler.compile, mig)
        benchmark.extra_info.update(
            {
                "scale": scale,
                "gates": mig.num_gates,
                "instructions": program.num_instructions,
                "work_rrams": program.num_rrams,
            }
        )

    @pytest.mark.parametrize("config", list(SELECTION_CONFIGS))
    @pytest.mark.parametrize("order", ["as-built", "shuffled"])
    def test_selection_rules(benchmark, config, order, scale):
        """X2/X5: every scheduling rule set on friendly and hostile orders."""
        mig = rewrite_for_plim(benchmark_info("mem_ctrl").build(scale))
        if order == "shuffled":
            mig = shuffle_topological(mig, seed=42)
        compiler = PlimCompiler(SELECTION_CONFIGS[config])
        program = benchmark(compiler.compile, mig)
        benchmark.extra_info.update(
            {
                "scale": scale,
                "order": order,
                "instructions": program.num_instructions,
                "work_rrams": program.num_rrams,
            }
        )

    def test_scheduler_beats_naive_on_hostile_order(scale):
        """The paper's central #R claim, on netlist-file-like gate order."""
        mig = rewrite_for_plim(benchmark_info("mem_ctrl").build(scale))
        hostile = shuffle_topological(mig, seed=42)
        naive = PlimCompiler(
            CompilerOptions.naive(fix_output_polarity=False)
        ).compile(hostile)
        smart = PlimCompiler(CompilerOptions(fix_output_polarity=False)).compile(hostile)
        assert smart.num_rrams < naive.num_rrams
        assert smart.num_instructions < naive.num_instructions


# ----------------------------------------------------------------------
# standalone mode: machine-readable perf trajectory (BENCH_compiler.json)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    """Compile the registry and write BENCH_compiler.json (time, #I, #R)."""
    import time

    import _common

    from repro.circuits.registry import BENCHMARK_NAMES
    from repro.core.batch import compile_many

    parser = _common.snapshot_parser(main.__doc__, __file__, "BENCH_compiler.json")
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv)

    specs = [(name, args.scale) for name in BENCHMARK_NAMES]
    option_sets = {"full": CompilerOptions(), "naive": CompilerOptions.naive()}
    start = time.perf_counter()
    results = compile_many(specs, option_sets, workers=args.workers, rewrite=True)
    wall = time.perf_counter() - start

    _common.write_snapshot(
        args.output,
        "compiler",
        [r.to_dict() for r in results],
        wall,
        scale=args.scale,
        workers=args.workers,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
