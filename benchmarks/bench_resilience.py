"""Resilient-pool overhead and crash-recovery benches (ISSUE 7).

The batched drivers now run on :mod:`repro.core.resilience`'s supervised
per-task worker pool instead of a bare ``pool.map``.  Supervision is only
acceptable if it is (a) free when nothing goes wrong and (b) actually
recovers when something does.  This bench measures both on the registry
workload: the supervised :func:`~repro.core.batch.parallel_map` must stay
within a few percent of a plain ``ProcessPoolExecutor.map`` over the same
payloads, and a worker killed mid-run under ``on_error="skip"`` must cost
exactly one task.

Run directly (``python benchmarks/bench_resilience.py [--scale ci]
[--workers N]``) to emit ``BENCH_resilience.json`` next to this file:
min-of-repeats wall times for both engines, the overhead percentage, and
the crash-recovery leg.  Exits nonzero when the overhead exceeds
``--max-overhead-pct`` (default 5%), which is what the CI step gates on.
"""

try:
    import pytest
except ModuleNotFoundError:  # standalone snapshot mode needs no pytest
    pytest = None

from repro.circuits.registry import BENCHMARK_NAMES, build
from repro.core.batch import parallel_map
from repro.core.compiler import CompilerOptions, PlimCompiler
from repro.core.resilience import Fault, FaultPlan, TaskFailure, TaskPolicy
from repro.core.rewriting import rewrite_for_plim


def _compile_spec(spec):
    """The registry workload task: build, rewrite and compile one circuit."""
    name, scale = spec
    mig = rewrite_for_plim(build(name, scale))
    program = PlimCompiler(CompilerOptions()).compile(mig)
    return (name, mig.num_gates, program.num_instructions, program.num_rrams)


def _pool_map(fn, items, workers):
    """The pre-resilience engine: a bare ``ProcessPoolExecutor.map``."""
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


_BENCH_WORKERS = 2  # works on any CPU count, exercises the pooled path


if pytest is not None:

    def test_supervised_map_matches_pool_map(scale):
        """Same payloads, same results: supervision changes nothing."""
        specs = [(name, scale) for name in BENCHMARK_NAMES[:4]]
        supervised = parallel_map(_compile_spec, specs, workers=_BENCH_WORKERS)
        baseline = _pool_map(_compile_spec, specs, _BENCH_WORKERS)
        assert supervised == baseline

    def test_crash_recovery_costs_one_task(scale):
        """A worker os._exit mid-run loses exactly its own task."""
        specs = [(name, scale) for name in BENCHMARK_NAMES[:4]]
        clean = parallel_map(_compile_spec, specs, workers=_BENCH_WORKERS)
        out = parallel_map(
            _compile_spec,
            specs,
            workers=_BENCH_WORKERS,
            policy=TaskPolicy(on_error="skip"),
            fault_plan=FaultPlan({1: Fault("exit")}),
        )
        failures = [r for r in out if isinstance(r, TaskFailure)]
        assert [f.index for f in failures] == [1]
        assert failures[0].kind == "crash"
        survivors = [r for r in out if not isinstance(r, TaskFailure)]
        assert survivors == [clean[i] for i in range(len(specs)) if i != 1]


# ----------------------------------------------------------------------
# standalone mode: machine-readable perf trajectory (BENCH_resilience.json)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    """Time the supervised map against a bare pool.map and write
    BENCH_resilience.json (min-of-repeats walls, overhead %, recovery leg)."""
    import time

    import _common

    parser = _common.snapshot_parser(main.__doc__, __file__, "BENCH_resilience.json")
    parser.add_argument("--workers", type=int, default=_BENCH_WORKERS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--max-overhead-pct",
        type=float,
        default=5.0,
        help="fail (exit 1) when the supervised map is slower than "
        "pool.map by more than this percentage",
    )
    args = parser.parse_args(argv)

    specs = [(name, args.scale) for name in BENCHMARK_NAMES]
    start = time.perf_counter()

    # Interleave the engines so drift (thermal, cache) hits both equally;
    # min-of-repeats discards scheduling noise.
    supervised_runs, baseline_runs = [], []
    results = None
    for _ in range(max(1, args.repeats)):
        t0 = time.perf_counter()
        results = parallel_map(_compile_spec, specs, workers=args.workers)
        supervised_runs.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        baseline = _pool_map(_compile_spec, specs, args.workers)
        baseline_runs.append(time.perf_counter() - t0)
        assert results == baseline, "engines disagree on the registry workload"

    supervised_s = min(supervised_runs)
    baseline_s = min(baseline_runs)
    overhead_pct = (supervised_s - baseline_s) / baseline_s * 100.0

    # Recovery leg: kill one worker mid-run, expect exactly one lost task.
    crash_index = len(specs) // 2
    t0 = time.perf_counter()
    recovered = parallel_map(
        _compile_spec,
        specs,
        workers=args.workers,
        policy=TaskPolicy(on_error="skip"),
        fault_plan=FaultPlan({crash_index: Fault("exit")}),
    )
    recovery_s = time.perf_counter() - t0
    failures = [r for r in recovered if isinstance(r, TaskFailure)]
    survivors_match = [
        r for r in recovered if not isinstance(r, TaskFailure)
    ] == [r for i, r in enumerate(results) if i != crash_index]

    wall = time.perf_counter() - start
    _common.write_snapshot(
        args.output,
        "resilience",
        [
            {"circuit": name, "num_gates": g, "num_instructions": i, "num_rrams": r}
            for name, g, i, r in results
        ],
        wall,
        scale=args.scale,
        workers=args.workers,
        repeats=args.repeats,
        supervised_seconds=round(supervised_s, 4),
        pool_map_seconds=round(baseline_s, 4),
        overhead_pct=round(overhead_pct, 2),
        recovery={
            "seconds": round(recovery_s, 4),
            "crash_index": crash_index,
            "failed_tasks": len(failures),
            "survivors_match": survivors_match,
        },
    )
    ok = (
        overhead_pct <= args.max_overhead_pct
        and len(failures) == 1
        and survivors_match
    )
    if not ok:
        print(
            f"FAIL: overhead {overhead_pct:.2f}% "
            f"(max {args.max_overhead_pct}%), "
            f"{len(failures)} failed task(s), survivors_match={survivors_match}"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
